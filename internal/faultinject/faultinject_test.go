// The tests live in an external package: they drive the injector through the
// real krylov loop and parallel pool, which themselves import faultinject.
package faultinject_test

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/parallel"
)

// replay runs a fixed corruption scenario against the injector and returns
// the fired-event log plus the corrupted indices it produced.
func replay(seed int64) ([]faultinject.Event, []int) {
	in := faultinject.New(seed).WithSpMVNaN(2, 5)
	restore := faultinject.Activate(in)
	defer restore()

	var idxs []int
	y := make([]float64, 64)
	for iter := 1; iter <= 6; iter++ {
		for i := range y {
			y[i] = 1
		}
		faultinject.SpMVOut(iter, y)
		for i, v := range y {
			if math.IsNaN(v) {
				idxs = append(idxs, i)
			}
		}
	}
	a := matgen.Laplace2D(8, 8)
	_, row := in.PerturbDiagonal(a, -10)
	idxs = append(idxs, row)
	_, row = in.ZeroDiagonal(a)
	idxs = append(idxs, row)
	g := matgen.Laplace2D(8, 8)
	idxs = append(idxs, in.DropGRow(g))
	return in.Events(), idxs
}

func TestInjectorDeterminism(t *testing.T) {
	ev1, idx1 := replay(1234)
	ev2, idx2 := replay(1234)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed, different events:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(idx1, idx2) {
		t.Fatalf("same seed, different corruption: %v vs %v", idx1, idx2)
	}
	// Two NaN injections + two diagonal events + one dropped row.
	if len(ev1) != 5 {
		t.Fatalf("expected 5 events, got %d: %v", len(ev1), ev1)
	}
	ev3, _ := replay(99)
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatalf("different seeds should not replay identically")
	}
}

func TestSpMVNaNDetectedByKrylov(t *testing.T) {
	in := faultinject.New(7).WithSpMVNaN(3)
	restore := faultinject.Activate(in)
	defer restore()

	a := matgen.Laplace2D(16, 16)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, a.Rows)
	res := krylov.Solve(a, x, rhs, nil, krylov.DefaultOptions())
	if res.Status != krylov.StatusNaNOrInf {
		t.Fatalf("status=%v want nan-or-inf", res.Status)
	}
	if res.Iterations > 3 {
		t.Fatalf("NaN injected at iteration 3 detected only at %d", res.Iterations)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != faultinject.SiteSpMVOut || ev[0].Iter != 3 {
		t.Fatalf("event log does not attribute the fault: %v", ev)
	}
}

func TestWorkerDelayHook(t *testing.T) {
	in := faultinject.New(3).WithWorkerDelay(2*time.Millisecond, 2)
	restore := faultinject.Activate(in)
	defer restore()

	var ran atomic.Int64
	start := time.Now()
	parallel.For(64, 4, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	})
	if ran.Load() != 64 {
		t.Fatalf("pool lost work under delay: %d/64", ran.Load())
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatalf("delay did not take effect")
	}
	var delays int
	for _, e := range in.Events() {
		if e.Site == faultinject.SiteWorkerDelay {
			delays++
		}
	}
	if delays != 2 {
		t.Fatalf("expected exactly 2 delay events, got %d: %v", delays, in.Events())
	}
}

func TestDisabledFastPath(t *testing.T) {
	if faultinject.Enabled() {
		t.Fatalf("injector active at test start")
	}
	// Hooks must be harmless no-ops without an active injector.
	y := []float64{1, 2, 3}
	faultinject.SpMVOut(1, y)
	faultinject.WorkerStart(0)
	for i, v := range y {
		if v != float64(i+1) {
			t.Fatalf("disabled hook modified data: %v", y)
		}
	}
}

func TestActivateRestore(t *testing.T) {
	in := faultinject.New(1).WithSpMVNaN(1)
	restore := faultinject.Activate(in)
	if !faultinject.Enabled() {
		t.Fatalf("Activate did not enable")
	}
	restore()
	if faultinject.Enabled() {
		t.Fatalf("restore did not disable")
	}
	y := []float64{1}
	faultinject.SpMVOut(1, y)
	if math.IsNaN(y[0]) {
		t.Fatalf("deactivated injector still fired")
	}
}
