// Package arch describes the three machines of the paper's evaluation —
// Intel Skylake (2×24-core Xeon Platinum 8160), IBM POWER9 (2×20-core
// 8335-GTH) and Fujitsu A64FX — at the level of detail the reproduction
// needs: cache-line size (the input of the cache-friendly fill-in), L1 data
// cache geometry (the cache simulator), and the bandwidth/latency figures
// that drive the analytic timing model in internal/perfmodel.
//
// The models deliberately capture first-order machine character, not cycle
// accuracy: the paper's effect hinges on line size and on SpMV being bound
// by how many distinct cache lines of x a sweep touches, both of which
// these parameters encode. The per-operation costs are node-level (already
// amortized over the cores the paper runs on).
package arch

import "repro/internal/cachesim"

// Arch is a machine model.
type Arch struct {
	// Name identifies the machine in reports.
	Name string
	// Cores is the number of cores used by the parallel runs.
	Cores int
	// FreqHz is the nominal core clock.
	FreqHz float64
	// LineBytes is the data-cache line size — the single architecture
	// input the cache-friendly fill-in needs (Section 4.1).
	LineBytes int
	// L1 is the machine's per-core L1 data-cache geometry.
	L1 cachesim.Config
	// L1Sim is the geometry the campaign's cache simulator uses: the same
	// line size and associativity as L1, with the capacity scaled down by
	// the same ~16x factor as the reproduction's matrix sizes relative to
	// the paper's, preserving the working-set-to-cache ratios that the
	// paper's miss measurements reflect (x vectors there are 10-100x the
	// L1 capacity).
	L1Sim cachesim.Config
	// MemBandwidth is the aggregate peak memory bandwidth in bytes/second;
	// stride-1 streams (matrix values/indices) are priced against it.
	MemBandwidth float64
	// GatherCost is the node-amortized seconds per *distinct* cache line
	// of x touched within a row of an SpMV sweep: the irregular-gather
	// overhead that in-line pattern extensions avoid paying twice.
	GatherCost float64
	// MissLatency is the node-amortized seconds charged per L1 x-miss on
	// top of GatherCost (the penalty random extensions multiply).
	MissLatency float64
	// SetupFlops is the effective flop/s of the parallel dense setup
	// kernels (local Cholesky factorizations across all cores).
	SetupFlops float64
	// RowOverhead is the per-row loop/reduction overhead of one SpMV sweep,
	// in seconds.
	RowOverhead float64
}

// ElemsPerLine returns the number of float64 elements per cache line.
func (a Arch) ElemsPerLine() int { return a.LineBytes / 8 }

// Skylake models the paper's 2×24-core Intel Xeon Platinum 8160 node:
// 64 B lines, 32 KiB 8-way L1D per core, 12 DDR4-2667 channels (~256 GB/s).
func Skylake() Arch {
	return Arch{
		Name:         "Skylake",
		Cores:        48,
		FreqHz:       2.1e9,
		LineBytes:    64,
		L1:           cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L1Sim:        cachesim.Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
		MemBandwidth: 256e9,
		GatherCost:   1.5e-10,
		MissLatency:  2.5e-9,
		SetupFlops:   60e9,
		RowOverhead:  5e-11,
	}
}

// POWER9 models the 2×20-core IBM POWER9 8335-GTH node: 64 B lines (as the
// paper states), 32 KiB 8-way L1D. Same line size as Skylake — the paper
// stresses that the resulting pattern extensions are fundamentally equal
// and only the timing constants differ.
func POWER9() Arch {
	return Arch{
		Name:         "POWER9",
		Cores:        40,
		FreqHz:       2.4e9,
		LineBytes:    64,
		L1:           cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L1Sim:        cachesim.Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 8},
		MemBandwidth: 230e9,
		GatherCost:   1.8e-10,
		MissLatency:  3.0e-9,
		SetupFlops:   45e9,
		RowOverhead:  6e-11,
	}
}

// A64FX models the 48-core Fujitsu A64FX: 256 B cache lines (4× Skylake —
// the property that lets FSAIE add far more cache-friendly entries),
// 64 KiB 4-way L1D per core, HBM2 memory (~1 TB/s) with comparatively high
// access latency (large GatherCost, cheap streaming).
func A64FX() Arch {
	return Arch{
		Name:      "A64FX",
		Cores:     48,
		FreqHz:    2.2e9,
		LineBytes: 256,
		L1:        cachesim.Config{SizeBytes: 64 << 10, LineBytes: 256, Ways: 4},
		L1Sim:     cachesim.Config{SizeBytes: 8 << 10, LineBytes: 256, Ways: 4},
		// HBM2: huge streaming bandwidth, comparatively expensive random
		// access — exactly the balance that makes in-line fill-in shine.
		MemBandwidth: 1024e9,
		GatherCost:   3.5e-10,
		MissLatency:  5.0e-9,
		SetupFlops:   70e9,
		RowOverhead:  5e-11,
	}
}

// All returns the three paper machines in evaluation order.
func All() []Arch { return []Arch{Skylake(), POWER9(), A64FX()} }

// ByName returns the named machine model (case-insensitive on first letter
// conventions aside, exact match) and whether it exists.
func ByName(name string) (Arch, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return Arch{}, false
}
