package krylov

import "fmt"

// Status is the typed outcome of a CG/PCG solve. It refines the boolean
// Converged with a diagnosis of *why* a solve terminated, so callers can
// distinguish plain iteration-budget exhaustion from numerical breakdown
// (which calls for a different remedy: shift, fallback or restart — see
// internal/resilience).
type Status int

const (
	// StatusUnknown is the zero value; Solve never returns it.
	StatusUnknown Status = iota
	// StatusConverged: the relative residual reached the tolerance.
	StatusConverged
	// StatusMaxIter: the iteration budget ran out with a finite,
	// non-stagnant residual above the tolerance.
	StatusMaxIter
	// StatusIndefinite: pᵀAp <= 0 — the operator (or the preconditioned
	// operator in finite precision) lost positive definiteness, so the CG
	// recurrence is no longer a descent. The classic SPD breakdown.
	StatusIndefinite
	// StatusNaNOrInf: a NaN or Inf appeared in the recurrence (poisoned
	// input, overflow, or an injected fault).
	StatusNaNOrInf
	// StatusStagnation: the residual made no relative progress for
	// Options.StagnationWindow consecutive iterations (only reported when
	// the guard is enabled).
	StatusStagnation
	// StatusCancelled: Options.Ctx was cancelled; Result.Checkpoint holds a
	// resumable snapshot.
	StatusCancelled
)

// String returns the stable machine-readable name of the status (used in run
// reports, /healthz and the SSE stream).
func (s Status) String() string {
	switch s {
	case StatusUnknown:
		return "unknown"
	case StatusConverged:
		return "converged"
	case StatusMaxIter:
		return "max-iter"
	case StatusIndefinite:
		return "indefinite-curvature"
	case StatusNaNOrInf:
		return "nan-or-inf"
	case StatusStagnation:
		return "stagnation"
	case StatusCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Breakdown reports whether the status is a numerical breakdown (as opposed
// to success, budget exhaustion or cancellation). Breakdowns are the statuses
// the resilience layer reacts to with a preconditioner fallback.
func (s Status) Breakdown() bool {
	switch s {
	case StatusIndefinite, StatusNaNOrInf, StatusStagnation:
		return true
	}
	return false
}

// MarshalJSON encodes the status as its string name, keeping run reports
// readable and independent of the enum ordering.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Checkpoint is a resumable snapshot of the CG recurrence state.
//
// A full checkpoint (P non-nil) restores the exact Krylov subspace: passing
// it as Options.Resume continues the solve as if never interrupted, provided
// the matrix and preconditioner are unchanged. A warm checkpoint (P nil)
// keeps only the iterate (and optionally the residual): Resume then rebuilds
// the search direction from scratch, which is the correct restart after a
// breakdown or when switching preconditioners — the iterate survives, the
// poisoned direction does not.
type Checkpoint struct {
	// Iter is the number of iterations completed when the snapshot was taken.
	Iter int
	// X is the current iterate.
	X []float64
	// R is the current residual b - A·X (nil: recomputed on resume).
	R []float64
	// P is the current search direction (nil: warm restart).
	P []float64
	// RZ is the current rᵀz inner product matching P (full checkpoints only).
	RZ float64
}

// clone copies vecs so the snapshot is decoupled from the solver buffers.
func snapshotCheckpoint(iter int, x, r, p []float64, rz float64) *Checkpoint {
	return &Checkpoint{
		Iter: iter,
		X:    append([]float64(nil), x...),
		R:    append([]float64(nil), r...),
		P:    append([]float64(nil), p...),
		RZ:   rz,
	}
}

// warmCheckpoint snapshots only iterate and residual: enough to restart from
// the best point with a fresh direction (or a different preconditioner).
func warmCheckpoint(iter int, x, r []float64) *Checkpoint {
	return &Checkpoint{
		Iter: iter,
		X:    append([]float64(nil), x...),
		R:    append([]float64(nil), r...),
	}
}
