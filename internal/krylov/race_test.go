package krylov

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentSolvesShareThePool runs several parallel solves at once:
// each has its own kernels.Engine but all dispatch onto the process-wide
// worker pool, whose busy-fallback must keep them independent and correct.
// Run with -race, this is the pool's main data-race regression test.
func TestConcurrentSolvesShareThePool(t *testing.T) {
	n := 300
	a := tridiag(n, -1, 2.4, -1)
	a.PartitionPlan(4) // pre-build so goroutines share one cached plan
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}
	serial := make([]float64, n)
	ref := Solve(a, serial, rhs, nil, Options{Tol: 1e-10, MaxIter: 2000, Workers: 1})
	if !ref.Converged {
		t.Fatalf("reference solve did not converge: %+v", ref)
	}

	const solves = 8
	var wg sync.WaitGroup
	errs := make([]string, solves)
	for s := 0; s < solves; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			x := make([]float64, n)
			res := Solve(a, x, rhs, nil, Options{Tol: 1e-10, MaxIter: 2000, Workers: 4})
			if !res.Converged {
				errs[s] = "did not converge"
				return
			}
			for i := range x {
				if math.Abs(x[i]-serial[i]) > 1e-8 {
					errs[s] = "solution diverged from serial reference"
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for s, e := range errs {
		if e != "" {
			t.Errorf("solve %d: %s", s, e)
		}
	}
}
