package krylov

import (
	"math"

	"repro/internal/sparse"
)

// Preconditioner applies an approximate inverse: z = M r with M ≈ A⁻¹.
// Implementations must treat z and r as distinct, caller-owned buffers.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal (point Jacobi) preconditioner z_i = r_i / a_ii.
type Jacobi struct {
	InvDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. Zero
// diagonal entries fall back to 1 (no scaling) to stay well defined.
func NewJacobi(a *sparse.CSR) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &Jacobi{InvDiag: inv}
}

// Apply computes z = D⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	for i := range r {
		z[i] = r[i] * j.InvDiag[i]
	}
}

// Options configures a CG/PCG solve.
type Options struct {
	// Tol is the convergence threshold on ||r_k||₂ / ||r₀||₂. The paper
	// uses 1e-8 (initial residual reduced by eight orders of magnitude).
	Tol float64
	// MaxIter caps the iteration count; the paper excludes matrices that
	// need more than 10000 FSAI-preconditioned iterations.
	MaxIter int
	// Workers sets the SpMV parallelism (<=0: all CPUs, 1: serial).
	Workers int
	// RecordHistory stores ||r_k||/||r₀|| per iteration in Result.History.
	RecordHistory bool
}

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 10000, Workers: 1}
}

// Result reports the outcome of a CG/PCG solve.
type Result struct {
	Iterations  int
	Converged   bool
	RelResidual float64   // final ||r||/||r₀||
	History     []float64 // per-iteration relative residuals if recorded
}

// Solve runs preconditioned conjugate gradient on A x = b with the given
// preconditioner (nil or Identity{} for plain CG), starting from x = 0.
// The solution overwrites x, which must have length A.Rows.
//
// The loop is the standard PCG recurrence of Section 2.1: one SpMV with A,
// one preconditioner application (for FSAI, two more SpMVs), two dot
// products and three AXPY-class updates per iteration.
func Solve(a *sparse.CSR, x, b []float64, m Preconditioner, opt Options) Result {
	n := a.Rows
	if m == nil {
		m = Identity{}
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10000
	}
	Fill(x, 0)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	bnorm := Norm2(b)
	if bnorm == 0 {
		return Result{Converged: true}
	}
	m.Apply(z, r)
	copy(p, z)
	rz := Dot(r, z)
	res := Result{RelResidual: 1}
	if opt.RecordHistory {
		res.History = append(res.History, 1)
	}
	spmv := func(y, v []float64) {
		if opt.Workers == 1 {
			a.MulVec(y, v)
		} else {
			a.MulVecParallel(y, v, opt.Workers)
		}
	}
	for it := 0; it < opt.MaxIter; it++ {
		spmv(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Breakdown: A (or the preconditioned operator) lost positive
			// definiteness in finite precision. Report current state.
			res.RelResidual = Norm2(r) / bnorm
			return res
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		res.Iterations = it + 1
		rel := Norm2(r) / bnorm
		res.RelResidual = rel
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if rel <= opt.Tol {
			res.Converged = true
			return res
		}
		m.Apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		Xpay(z, beta, p)
		rz = rzNew
	}
	return res
}
