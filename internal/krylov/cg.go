package krylov

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/prof"
	"repro/internal/sparse"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Preconditioner applies an approximate inverse: z = M r with M ≈ A⁻¹.
// Implementations must treat z and r as distinct, caller-owned buffers.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal (point Jacobi) preconditioner z_i = r_i / a_ii.
type Jacobi struct {
	InvDiag []float64
	// NegDiag counts diagonal entries that were negative and got the
	// magnitude fallback 1/|a_ii|; ZeroDiag counts exact zeros that fell
	// back to 1. Either is a red flag for an SPD solve — publish them with
	// PublishWarnings so the telemetry surface sees the repair.
	NegDiag, ZeroDiag int
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. A negative
// diagonal entry would flip the sign of z and destroy the PCG inner-product
// structure, so it falls back to 1/|a_ii|; zero entries fall back to 1 (no
// scaling). Both repairs are counted on the returned preconditioner.
func NewJacobi(a *sparse.CSR) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	j := &Jacobi{InvDiag: inv}
	for i, v := range d {
		switch {
		case v > 0:
			inv[i] = 1 / v
		case v < 0:
			inv[i] = 1 / -v
			j.NegDiag++
		default:
			inv[i] = 1
			j.ZeroDiag++
		}
	}
	return j
}

// PublishWarnings records the diagonal repairs in reg as warning counters
// ("krylov.jacobi.neg_diag_fixed", "krylov.jacobi.zero_diag_fixed").
// Nil-safe on both receiver and registry.
func (j *Jacobi) PublishWarnings(reg *telemetry.Registry) {
	if j == nil || reg == nil {
		return
	}
	if j.NegDiag > 0 {
		reg.Counter("krylov.jacobi.neg_diag_fixed").Add(int64(j.NegDiag))
	}
	if j.ZeroDiag > 0 {
		reg.Counter("krylov.jacobi.zero_diag_fixed").Add(int64(j.ZeroDiag))
	}
}

// Apply computes z = D⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	for i := range r {
		z[i] = r[i] * j.InvDiag[i]
	}
}

// Options configures a CG/PCG solve.
type Options struct {
	// Tol is the convergence threshold on ||r_k||₂ / ||r₀||₂. The paper
	// uses 1e-8 (initial residual reduced by eight orders of magnitude).
	Tol float64
	// MaxIter caps the iteration count; the paper excludes matrices that
	// need more than 10000 FSAI-preconditioned iterations. With Resume the
	// cap applies to the total (resumed-from plus new) iteration count.
	MaxIter int
	// Workers sets the SpMV parallelism (<=0: all CPUs, 1: serial).
	Workers int
	// RecordHistory stores ||r_k||/||r₀|| per iteration in Result.History.
	RecordHistory bool
	// Progress, when non-nil, is called after every completed iteration
	// with the 1-based iteration number and the current relative residual.
	// It runs on the solver goroutine; keep it cheap.
	Progress func(iter int, relres float64)
	// ProgressDetail, when non-nil, is called after every completed
	// iteration (after Progress) with a richer snapshot: the running
	// kernel-class timing breakdown is populated when CollectTiming is set,
	// zero otherwise. On a terminal breakdown or cancellation one final
	// snapshot with Status set is emitted, so stream watchers never see a
	// solve vanish mid-flight. It runs on the solver goroutine; keep it
	// cheap. This is the hook live observability (obs.SolveWatcher) plugs
	// into.
	ProgressDetail func(ProgressInfo)
	// CollectTiming enables the per-iteration wall-clock breakdown (SpMV
	// vs. preconditioner-apply vs. BLAS-1) returned in Result.Timing. Off
	// by default so the inner loop carries no clock calls.
	CollectTiming bool
	// Metrics, when non-nil (and CollectTiming is set), receives
	// per-iteration timing histograms ("krylov.iter.spmv_ns",
	// "krylov.iter.precond_ns", "krylov.iter.blas1_ns") and the
	// "krylov.iterations" counter.
	Metrics *telemetry.Registry

	// Ctx, when non-nil, cancels the solve cooperatively: it is checked
	// every CancelCheckEvery iterations and on cancellation the solve
	// returns StatusCancelled with a resumable Result.Checkpoint.
	Ctx context.Context
	// CancelCheckEvery is the Ctx poll interval in iterations (default 32).
	CancelCheckEvery int
	// CheckpointEvery, when > 0 together with OnCheckpoint, emits a full
	// resumable snapshot every so many iterations.
	CheckpointEvery int
	// OnCheckpoint receives the periodic snapshots. It runs on the solver
	// goroutine; the snapshot owns its buffers.
	OnCheckpoint func(Checkpoint)
	// Resume, when non-nil, continues a previous solve instead of starting
	// from x = 0: a full checkpoint (P set) restores the exact recurrence;
	// a warm checkpoint (P nil) restarts from the saved iterate with a
	// fresh search direction (residual recomputed when R is nil).
	Resume *Checkpoint
	// StagnationWindow, when > 0, declares breakdown (StatusStagnation)
	// after that many consecutive iterations without a relative-residual
	// improvement of at least StagnationRelImprovement. Off by default: a
	// plain CG plateau can recover, so only recovery-aware callers (the
	// resilience layer) should arm it.
	StagnationWindow int
}

// StagnationRelImprovement is the minimum relative residual decrease that
// counts as progress for the stagnation guard: rel < best*(1-this).
const StagnationRelImprovement = 1e-3

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 10000, Workers: 1}
}

// Timing is the wall-clock breakdown of a solve, split by the three kernel
// classes of the Section 2.1 loop. Populated when Options.CollectTiming is
// set; all fields zero otherwise.
type Timing struct {
	SpMV    time.Duration // y = Ap products
	Precond time.Duration // z = M r applications (for FSAI: two more SpMVs)
	BLAS1   time.Duration // dot products, AXPYs, norms
	Total   time.Duration // whole Solve call
}

// ProgressInfo is the per-iteration snapshot passed to
// Options.ProgressDetail.
type ProgressInfo struct {
	// Iteration is the 1-based completed iteration count.
	Iteration int
	// RelRes is the current relative residual ||r_k||/||r₀||.
	RelRes float64
	// Converged reports whether this iteration reached the tolerance.
	Converged bool
	// Status is StatusUnknown for ordinary mid-flight snapshots and the
	// terminal status on the final snapshot of a breakdown or cancellation.
	Status Status
	// Timing is the running kernel-class breakdown (Total included) when
	// Options.CollectTiming is set; the zero value otherwise.
	Timing Timing
}

// Result reports the outcome of a CG/PCG solve.
type Result struct {
	Iterations  int
	Converged   bool
	Status      Status    // typed termination diagnosis
	RelResidual float64   // final ||r||/||r₀||
	History     []float64 // per-iteration relative residuals if recorded
	Timing      Timing    // kernel-class breakdown if CollectTiming was set
	// Checkpoint is a resumable snapshot on non-converged termination:
	// a full checkpoint on cancellation, a warm (iterate-only) checkpoint
	// on breakdown — the iterate is worth keeping, the direction is not.
	// Nil on convergence and max-iter exhaustion of a from-zero solve is
	// avoided too: max-iter also carries a full checkpoint so callers can
	// grant more budget and continue.
	Checkpoint *Checkpoint
}

// Solve runs preconditioned conjugate gradient on A x = b with the given
// preconditioner (nil or Identity{} for plain CG), starting from x = 0
// (or from Options.Resume). The solution overwrites x, which must have
// length A.Rows.
//
// The loop is the standard PCG recurrence of Section 2.1: one SpMV with A,
// one preconditioner application (for FSAI, two more SpMVs), two dot
// products and three AXPY-class updates per iteration. On top of it sit the
// robustness guards: indefinite-curvature and NaN/Inf detection, optional
// stagnation detection, cooperative cancellation and checkpointing. Every
// terminal path reports a typed Result.Status.
//
// When Options.Ctx is set, the whole loop runs under the pprof label
// phase=cg merged into the context's existing labels (the service adds
// job_id/trace_id/fingerprint), so captured CPU profile windows attribute
// solver samples to the owning job — including on the pooled kernel
// workers, which adopt the labels per dispatch.
func Solve(a *sparse.CSR, x, b []float64, m Preconditioner, opt Options) Result {
	if opt.Ctx == nil {
		return solve(a, x, b, m, opt)
	}
	var res Result
	prof.WithPhase(opt.Ctx, prof.PhaseCG, func(ctx context.Context) {
		o := opt
		o.Ctx = ctx
		res = solve(a, x, b, m, o)
	})
	return res
}

func solve(a *sparse.CSR, x, b []float64, m Preconditioner, opt Options) Result {
	n := a.Rows
	if m == nil {
		m = Identity{}
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10000
	}
	if opt.Workers <= 0 {
		// Resolve "all CPUs" once here rather than deferring the <=0
		// convention to every kernel call.
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.CancelCheckEvery <= 0 {
		opt.CancelCheckEvery = 32
	}
	collect := opt.CollectTiming
	var hSpMV, hPrecond, hBlas1 *telemetry.Histogram
	var iterCtr *telemetry.Counter
	if collect && opt.Metrics != nil {
		opt.Metrics.SetHelp("krylov_iter_spmv_ns", "per-iteration SpMV wall time")
		opt.Metrics.SetHelp("krylov_iter_precond_ns", "per-iteration preconditioner-apply wall time")
		opt.Metrics.SetHelp("krylov_iter_blas1_ns", "per-iteration BLAS-1 (dot/AXPY/norm) wall time")
		opt.Metrics.SetHelp("krylov_iterations", "completed CG/PCG iterations")
		buckets := telemetry.ExpBuckets(100, 10, 8) // 100 ns … 1 s per section
		hSpMV = opt.Metrics.Histogram("krylov.iter.spmv_ns", buckets)
		hPrecond = opt.Metrics.Histogram("krylov.iter.precond_ns", buckets)
		hBlas1 = opt.Metrics.Histogram("krylov.iter.blas1_ns", buckets)
		iterCtr = opt.Metrics.Counter("krylov.iterations")
	}
	// Kernel-layer attribution: the partition plan's residual SpMV load
	// imbalance and, at the end of the solve, how many pooled dispatches the
	// solve issued. Both land in the run report / Prometheus surface.
	var dispatches0 int64
	if opt.Metrics != nil {
		opt.Metrics.SetHelp("kernels_pool_dispatches", "parallel-pool task dispatches issued by solves")
		opt.Metrics.SetHelp("kernels_spmv_imbalance_pct", "residual nnz load imbalance of the SpMV partition plan")
		dispatches0 = kernels.PoolDispatches()
		imb := 0.0
		if opt.Workers > 1 {
			imb = a.PartitionPlan(opt.Workers).ImbalancePct
		}
		opt.Metrics.Gauge("kernels.spmv.imbalance_pct").Set(imb)
	}
	eng := kernels.New(n, opt.Workers)
	if opt.Ctx != nil {
		// Pooled kernel dispatches adopt the solve's pprof labels; the
		// preconditioner's own engine (FSAI's two G sweeps) gets the same
		// treatment when it supports it.
		eng.SetLabelContext(opt.Ctx)
		if lc, ok := m.(interface{ SetLabelContext(context.Context) }); ok {
			lc.SetLabelContext(opt.Ctx)
		}
	}
	var start, t0 time.Time
	if collect {
		start = time.Now()
	}
	// When the caller's context carries a request trace (the solve service),
	// the whole CG loop becomes one "cg-solve" span of that request's tree,
	// tagged with the typed outcome. No-op otherwise (nil span).
	cgSpan := trace.StartSpan(opt.Ctx, "cg-solve")
	res := Result{RelResidual: 1}
	finish := func(status Status) Result {
		res.Status = status
		res.Converged = status == StatusConverged
		if collect {
			res.Timing.Total = time.Since(start)
		}
		if opt.Metrics != nil {
			opt.Metrics.Counter("kernels.pool.dispatches").Add(kernels.PoolDispatches() - dispatches0)
		}
		cgSpan.SetAttr("status", status.String())
		cgSpan.SetAttr("iterations", fmt.Sprint(res.Iterations))
		cgSpan.End()
		return res
	}
	// terminal handles the paths that end a solve between the per-iteration
	// progress emissions (breakdown, cancellation): it appends the final
	// residual to the history and emits one last ProgressDetail carrying the
	// terminal status, so SSE watchers see the end instead of a vanishing
	// solve, then finishes with the typed status.
	terminal := func(status Status, rel float64, cp *Checkpoint, addHist bool) Result {
		res.RelResidual = rel
		res.Checkpoint = cp
		if opt.RecordHistory && addHist {
			res.History = append(res.History, rel)
		}
		out := finish(status)
		if opt.ProgressDetail != nil {
			info := ProgressInfo{
				Iteration: res.Iterations,
				RelRes:    rel,
				Status:    status,
				Timing:    res.Timing,
			}
			opt.ProgressDetail(info)
		}
		return out
	}

	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	spmv := func(y, v []float64) { eng.SpMV(a, y, v) }

	bnorm := eng.Norm2(b)
	if bnorm == 0 {
		Fill(x, 0)
		res.RelResidual = 0
		return finish(StatusConverged)
	}

	var rz float64
	startIter := 0
	exact := false // exact-recurrence resume: p and rz restored
	if cp := opt.Resume; cp != nil && len(cp.X) == n {
		copy(x, cp.X)
		startIter = cp.Iter
		res.Iterations = cp.Iter
		if len(cp.R) == n {
			copy(r, cp.R)
		} else {
			// Recompute r = b - A x from the restored iterate.
			spmv(ap, x)
			for i := range r {
				r[i] = b[i] - ap[i]
			}
		}
		if len(cp.P) == n && !math.IsNaN(cp.RZ) && cp.RZ > 0 {
			copy(p, cp.P)
			rz = cp.RZ
			exact = true
		}
	} else {
		Fill(x, 0)
	}

	rel := eng.Norm2(r) / bnorm
	res.RelResidual = rel
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return terminal(StatusNaNOrInf, rel, nil, true)
	}
	if opt.RecordHistory {
		res.History = append(res.History, rel)
	}
	if rel <= opt.Tol {
		// A resumed solve can arrive already converged.
		return finish(StatusConverged)
	}
	if !exact {
		if collect {
			t0 = time.Now()
		}
		m.Apply(z, r)
		if collect {
			res.Timing.Precond += time.Since(t0)
		}
		copy(p, z)
		rz = eng.Dot(r, z)
	}

	// Stagnation tracking: the best residual seen and when it was set.
	bestRel, bestIter := rel, startIter

	snapshot := func(it int) *Checkpoint { return snapshotCheckpoint(it, x, r, p, rz) }

	for it := startIter; it < opt.MaxIter; it++ {
		if opt.Ctx != nil && (it-startIter)%opt.CancelCheckEvery == 0 {
			select {
			case <-opt.Ctx.Done():
				// The last residual is already in the history; don't
				// duplicate it.
				return terminal(StatusCancelled, res.RelResidual, snapshot(it), false)
			default:
			}
		}
		if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil &&
			it > startIter && (it-startIter)%opt.CheckpointEvery == 0 {
			opt.OnCheckpoint(*snapshot(it))
		}
		if collect {
			t0 = time.Now()
		}
		spmv(ap, p)
		if faultinject.Enabled() {
			faultinject.SpMVOut(it+1, ap)
		}
		if collect {
			d := time.Since(t0)
			res.Timing.SpMV += d
			hSpMV.Observe(float64(d.Nanoseconds()))
			t0 = time.Now()
		}
		pap := eng.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) || math.IsInf(pap, 0) {
			// Breakdown: A (or the preconditioned operator) lost positive
			// definiteness in finite precision, or a NaN/Inf entered the
			// recurrence. The iterate x and residual r are still the last
			// good state, so hand them back as a warm checkpoint; the
			// direction p is what broke, so it is dropped.
			status := StatusIndefinite
			if math.IsNaN(pap) || math.IsInf(pap, 0) {
				status = StatusNaNOrInf
			}
			rel := eng.Norm2(r) / bnorm
			if collect {
				// Record the partial BLAS-1 slice (the pᵀAp dot and the
				// final norm) so the breakdown path loses no timing.
				d := time.Since(t0)
				res.Timing.BLAS1 += d
				hBlas1.Observe(float64(d.Nanoseconds()))
			}
			return terminal(status, rel, warmCheckpoint(it, x, r), true)
		}
		alpha := rz / pap
		// Fused iterate/residual update: x += αp, r -= αap and ‖r‖² in one
		// sweep instead of the textbook two AXPYs plus a norm. The serial
		// path is bit-identical to the separate kernels.
		rr := eng.XRUpdate(alpha, p, ap, x, r)
		res.Iterations = it + 1
		rel := math.Sqrt(rr) / bnorm
		res.RelResidual = rel
		if collect {
			d := time.Since(t0)
			res.Timing.BLAS1 += d
			hBlas1.Observe(float64(d.Nanoseconds()))
		}
		iterCtr.Inc()
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			// The iterate itself may be poisoned; no checkpoint to offer.
			return terminal(StatusNaNOrInf, rel, nil, true)
		}
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if opt.Progress != nil {
			opt.Progress(it+1, rel)
		}
		if opt.ProgressDetail != nil {
			info := ProgressInfo{Iteration: it + 1, RelRes: rel, Converged: rel <= opt.Tol, Timing: res.Timing}
			if collect {
				info.Timing.Total = time.Since(start)
			}
			opt.ProgressDetail(info)
		}
		if rel <= opt.Tol {
			return finish(StatusConverged)
		}
		if opt.StagnationWindow > 0 {
			if rel < bestRel*(1-StagnationRelImprovement) {
				bestRel, bestIter = rel, it+1
			} else if it+1-bestIter >= opt.StagnationWindow {
				return terminal(StatusStagnation, rel, warmCheckpoint(it+1, x, r), false)
			}
		}
		if collect {
			t0 = time.Now()
		}
		m.Apply(z, r)
		if collect {
			d := time.Since(t0)
			res.Timing.Precond += d
			hPrecond.Observe(float64(d.Nanoseconds()))
			t0 = time.Now()
		}
		rzNew := eng.Dot(r, z)
		beta := rzNew / rz
		eng.Xpay(z, beta, p)
		rz = rzNew
		if collect {
			res.Timing.BLAS1 += time.Since(t0)
		}
	}
	// Budget exhausted: keep a full checkpoint so the caller can continue
	// with a larger budget via Resume.
	res.Checkpoint = snapshot(opt.MaxIter)
	return finish(StatusMaxIter)
}
