package krylov

import (
	"math"
	"runtime"
	"time"

	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Preconditioner applies an approximate inverse: z = M r with M ≈ A⁻¹.
// Implementations must treat z and r as distinct, caller-owned buffers.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal (point Jacobi) preconditioner z_i = r_i / a_ii.
type Jacobi struct {
	InvDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. Zero
// diagonal entries fall back to 1 (no scaling) to stay well defined.
func NewJacobi(a *sparse.CSR) *Jacobi {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &Jacobi{InvDiag: inv}
}

// Apply computes z = D⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	for i := range r {
		z[i] = r[i] * j.InvDiag[i]
	}
}

// Options configures a CG/PCG solve.
type Options struct {
	// Tol is the convergence threshold on ||r_k||₂ / ||r₀||₂. The paper
	// uses 1e-8 (initial residual reduced by eight orders of magnitude).
	Tol float64
	// MaxIter caps the iteration count; the paper excludes matrices that
	// need more than 10000 FSAI-preconditioned iterations.
	MaxIter int
	// Workers sets the SpMV parallelism (<=0: all CPUs, 1: serial).
	Workers int
	// RecordHistory stores ||r_k||/||r₀|| per iteration in Result.History.
	RecordHistory bool
	// Progress, when non-nil, is called after every completed iteration
	// with the 1-based iteration number and the current relative residual.
	// It runs on the solver goroutine; keep it cheap.
	Progress func(iter int, relres float64)
	// ProgressDetail, when non-nil, is called after every completed
	// iteration (after Progress) with a richer snapshot: the running
	// kernel-class timing breakdown is populated when CollectTiming is set,
	// zero otherwise. It runs on the solver goroutine; keep it cheap. This
	// is the hook live observability (obs.SolveWatcher) plugs into.
	ProgressDetail func(ProgressInfo)
	// CollectTiming enables the per-iteration wall-clock breakdown (SpMV
	// vs. preconditioner-apply vs. BLAS-1) returned in Result.Timing. Off
	// by default so the inner loop carries no clock calls.
	CollectTiming bool
	// Metrics, when non-nil (and CollectTiming is set), receives
	// per-iteration timing histograms ("krylov.iter.spmv_ns",
	// "krylov.iter.precond_ns", "krylov.iter.blas1_ns") and the
	// "krylov.iterations" counter.
	Metrics *telemetry.Registry
}

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{Tol: 1e-8, MaxIter: 10000, Workers: 1}
}

// Timing is the wall-clock breakdown of a solve, split by the three kernel
// classes of the Section 2.1 loop. Populated when Options.CollectTiming is
// set; all fields zero otherwise.
type Timing struct {
	SpMV    time.Duration // y = Ap products
	Precond time.Duration // z = M r applications (for FSAI: two more SpMVs)
	BLAS1   time.Duration // dot products, AXPYs, norms
	Total   time.Duration // whole Solve call
}

// ProgressInfo is the per-iteration snapshot passed to
// Options.ProgressDetail.
type ProgressInfo struct {
	// Iteration is the 1-based completed iteration count.
	Iteration int
	// RelRes is the current relative residual ||r_k||/||r₀||.
	RelRes float64
	// Converged reports whether this iteration reached the tolerance.
	Converged bool
	// Timing is the running kernel-class breakdown (Total included) when
	// Options.CollectTiming is set; the zero value otherwise.
	Timing Timing
}

// Result reports the outcome of a CG/PCG solve.
type Result struct {
	Iterations  int
	Converged   bool
	RelResidual float64   // final ||r||/||r₀||
	History     []float64 // per-iteration relative residuals if recorded
	Timing      Timing    // kernel-class breakdown if CollectTiming was set
}

// Solve runs preconditioned conjugate gradient on A x = b with the given
// preconditioner (nil or Identity{} for plain CG), starting from x = 0.
// The solution overwrites x, which must have length A.Rows.
//
// The loop is the standard PCG recurrence of Section 2.1: one SpMV with A,
// one preconditioner application (for FSAI, two more SpMVs), two dot
// products and three AXPY-class updates per iteration.
func Solve(a *sparse.CSR, x, b []float64, m Preconditioner, opt Options) Result {
	n := a.Rows
	if m == nil {
		m = Identity{}
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10000
	}
	if opt.Workers <= 0 {
		// Resolve "all CPUs" once here rather than deferring the <=0
		// convention to every kernel call.
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	collect := opt.CollectTiming
	var hSpMV, hPrecond, hBlas1 *telemetry.Histogram
	var iterCtr *telemetry.Counter
	if collect && opt.Metrics != nil {
		buckets := telemetry.ExpBuckets(100, 10, 8) // 100 ns … 1 s per section
		hSpMV = opt.Metrics.Histogram("krylov.iter.spmv_ns", buckets)
		hPrecond = opt.Metrics.Histogram("krylov.iter.precond_ns", buckets)
		hBlas1 = opt.Metrics.Histogram("krylov.iter.blas1_ns", buckets)
		iterCtr = opt.Metrics.Counter("krylov.iterations")
	}
	var start, t0 time.Time
	if collect {
		start = time.Now()
	}
	res := Result{RelResidual: 1}
	finish := func() Result {
		if collect {
			res.Timing.Total = time.Since(start)
		}
		return res
	}

	Fill(x, 0)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	bnorm := Norm2(b)
	if bnorm == 0 {
		res.Converged = true
		res.RelResidual = 0
		return finish()
	}
	if collect {
		t0 = time.Now()
	}
	m.Apply(z, r)
	if collect {
		res.Timing.Precond += time.Since(t0)
	}
	copy(p, z)
	rz := Dot(r, z)
	if opt.RecordHistory {
		res.History = append(res.History, 1)
	}
	spmv := func(y, v []float64) {
		if opt.Workers == 1 {
			a.MulVec(y, v)
		} else {
			a.MulVecParallel(y, v, opt.Workers)
		}
	}
	for it := 0; it < opt.MaxIter; it++ {
		if collect {
			t0 = time.Now()
		}
		spmv(ap, p)
		if collect {
			d := time.Since(t0)
			res.Timing.SpMV += d
			hSpMV.Observe(float64(d.Nanoseconds()))
			t0 = time.Now()
		}
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// Breakdown: A (or the preconditioned operator) lost positive
			// definiteness in finite precision. Report current state; the
			// recorded history gets the final residual too, so it is never
			// silently truncated relative to RelResidual.
			res.RelResidual = Norm2(r) / bnorm
			if opt.RecordHistory {
				res.History = append(res.History, res.RelResidual)
			}
			return finish()
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		res.Iterations = it + 1
		rel := Norm2(r) / bnorm
		res.RelResidual = rel
		if collect {
			d := time.Since(t0)
			res.Timing.BLAS1 += d
			hBlas1.Observe(float64(d.Nanoseconds()))
		}
		iterCtr.Inc()
		if opt.RecordHistory {
			res.History = append(res.History, rel)
		}
		if opt.Progress != nil {
			opt.Progress(it+1, rel)
		}
		if opt.ProgressDetail != nil {
			info := ProgressInfo{Iteration: it + 1, RelRes: rel, Converged: rel <= opt.Tol, Timing: res.Timing}
			if collect {
				info.Timing.Total = time.Since(start)
			}
			opt.ProgressDetail(info)
		}
		if rel <= opt.Tol {
			res.Converged = true
			return finish()
		}
		if collect {
			t0 = time.Now()
		}
		m.Apply(z, r)
		if collect {
			d := time.Since(t0)
			res.Timing.Precond += d
			hPrecond.Observe(float64(d.Nanoseconds()))
			t0 = time.Now()
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		Xpay(z, beta, p)
		rz = rzNew
		if collect {
			res.Timing.BLAS1 += time.Since(t0)
		}
	}
	return finish()
}
