package krylov

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/telemetry"
)

func TestStatusNames(t *testing.T) {
	cases := map[Status]string{
		StatusUnknown:    "unknown",
		StatusConverged:  "converged",
		StatusMaxIter:    "max-iter",
		StatusIndefinite: "indefinite-curvature",
		StatusNaNOrInf:   "nan-or-inf",
		StatusStagnation: "stagnation",
		StatusCancelled:  "cancelled",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String()=%q want %q", int(s), s.String(), want)
		}
		b, err := json.Marshal(s)
		if err != nil || string(b) != `"`+want+`"` {
			t.Errorf("marshal %v: %s, %v", s, b, err)
		}
	}
	for _, s := range []Status{StatusIndefinite, StatusNaNOrInf, StatusStagnation} {
		if !s.Breakdown() {
			t.Errorf("%v should be a breakdown", s)
		}
	}
	for _, s := range []Status{StatusUnknown, StatusConverged, StatusMaxIter, StatusCancelled} {
		if s.Breakdown() {
			t.Errorf("%v should not be a breakdown", s)
		}
	}
}

func TestJacobiNegativeDiagonalGuard(t *testing.T) {
	b := sparse.NewCOO(3, 3, 3)
	b.Add(0, 0, 2)
	b.Add(1, 1, -4)
	b.Add(2, 2, 0)
	j := NewJacobi(b.ToCSR())
	if j.NegDiag != 1 || j.ZeroDiag != 1 {
		t.Fatalf("NegDiag=%d ZeroDiag=%d, want 1,1", j.NegDiag, j.ZeroDiag)
	}
	want := []float64{0.5, 0.25, 1}
	for i, w := range want {
		if j.InvDiag[i] != w {
			t.Errorf("InvDiag[%d]=%g want %g", i, j.InvDiag[i], w)
		}
	}
	reg := telemetry.NewRegistry()
	j.PublishWarnings(reg)
	if v := reg.Counter("krylov.jacobi.neg_diag_fixed").Value(); v != 1 {
		t.Errorf("neg_diag_fixed=%d want 1", v)
	}
	if v := reg.Counter("krylov.jacobi.zero_diag_fixed").Value(); v != 1 {
		t.Errorf("zero_diag_fixed=%d want 1", v)
	}
	// Nil-safety: must not panic.
	j.PublishWarnings(nil)
	(*Jacobi)(nil).PublishWarnings(reg)
}

func TestSolveStatusConvergedAndMaxIter(t *testing.T) {
	n := 64
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)
	res := Solve(a, x, rhs, nil, DefaultOptions())
	if res.Status != StatusConverged || !res.Converged {
		t.Fatalf("status=%v converged=%v", res.Status, res.Converged)
	}
	if res.Checkpoint != nil {
		t.Errorf("converged solve should carry no checkpoint")
	}

	opt := DefaultOptions()
	opt.MaxIter = 3
	x = make([]float64, n)
	res = Solve(a, x, rhs, nil, opt)
	if res.Status != StatusMaxIter || res.Converged {
		t.Fatalf("status=%v want max-iter", res.Status)
	}
	if res.Checkpoint == nil || res.Checkpoint.Iter != 3 || len(res.Checkpoint.P) != n {
		t.Fatalf("max-iter should carry a full checkpoint, got %+v", res.Checkpoint)
	}
}

func TestSolveIndefiniteBreakdown(t *testing.T) {
	// An indefinite diagonal makes pᵀAp negative on the first iteration.
	n := 4
	b := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, -1)
	}
	a := b.ToCSR()
	rhs := []float64{1, 1, 1, 1}
	x := make([]float64, n)

	var last ProgressInfo
	opt := DefaultOptions()
	opt.CollectTiming = true
	opt.RecordHistory = true
	opt.ProgressDetail = func(pi ProgressInfo) { last = pi }
	res := Solve(a, x, rhs, nil, opt)
	if res.Status != StatusIndefinite {
		t.Fatalf("status=%v want indefinite-curvature", res.Status)
	}
	if res.Checkpoint == nil || res.Checkpoint.P != nil {
		t.Fatalf("breakdown should carry a warm checkpoint (P nil), got %+v", res.Checkpoint)
	}
	// Satellite fix: the breakdown path must still emit a terminal
	// ProgressDetail (status set) and account its BLAS-1 time.
	if last.Status != StatusIndefinite {
		t.Errorf("terminal ProgressDetail missing: last status %v", last.Status)
	}
	if res.Timing.Total <= 0 {
		t.Errorf("breakdown dropped Timing.Total")
	}
	if len(res.History) == 0 {
		t.Errorf("breakdown dropped the final history entry")
	}
}

// nanPrecond poisons the preconditioner output from a given apply count on.
type nanPrecond struct{ applies, from int }

func (m *nanPrecond) Apply(z, r []float64) {
	copy(z, r)
	m.applies++
	if m.applies >= m.from {
		z[0] = math.NaN()
	}
}

func TestSolveNaNDetection(t *testing.T) {
	n := 32
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)
	res := Solve(a, x, rhs, &nanPrecond{from: 3}, DefaultOptions())
	if res.Status != StatusNaNOrInf {
		t.Fatalf("status=%v want nan-or-inf", res.Status)
	}
	if res.Converged {
		t.Fatalf("NaN solve must not report convergence")
	}

	// NaN already in the right-hand side: detected before iterating.
	rhs[1] = math.NaN()
	x = make([]float64, n)
	res = Solve(a, x, rhs, nil, DefaultOptions())
	if res.Status != StatusNaNOrInf || res.Iterations != 0 {
		t.Fatalf("status=%v iters=%d want nan-or-inf at iteration 0", res.Status, res.Iterations)
	}
}

// singularPrecond applies M = BᵀB where B is a lower bidiagonal factor with
// one zeroed row — the shape of an FSAI GᵀG that lost a factor row. M is
// singular PSD with coupling, so PCG keeps iterating with positive pᵀAp but
// the residual component in the null space never clears: a plateau, not a
// curvature breakdown.
type singularPrecond struct{ k int }

func (m singularPrecond) Apply(z, r []float64) {
	n := len(r)
	t := make([]float64, n)
	for i := 0; i < n; i++ {
		t[i] = r[i]
		if i > 0 {
			t[i] += 0.3 * r[i-1]
		}
	}
	t[m.k] = 0
	for i := 0; i < n; i++ {
		z[i] = t[i]
		if i < n-1 {
			z[i] += 0.3 * t[i+1]
		}
	}
}

func TestSolveStagnationGuard(t *testing.T) {
	n := 32
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, n)
	opt := DefaultOptions()
	opt.StagnationWindow = 25
	res := Solve(a, x, rhs, singularPrecond{k: n / 2}, opt)
	if res.Status != StatusStagnation {
		t.Fatalf("status=%v (iters=%d rel=%g) want stagnation", res.Status, res.Iterations, res.RelResidual)
	}
	if res.Checkpoint == nil || res.Checkpoint.P != nil {
		t.Fatalf("stagnation should carry a warm checkpoint, got %+v", res.Checkpoint)
	}
	if res.Iterations >= opt.MaxIter {
		t.Errorf("stagnation guard should fire well before MaxIter, took %d", res.Iterations)
	}
}

func TestSolveCancellation(t *testing.T) {
	n := 256
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)

	ctx, cancel := context.WithCancel(context.Background())
	var last ProgressInfo
	opt := DefaultOptions()
	opt.Ctx = ctx
	opt.CancelCheckEvery = 1
	opt.Progress = func(iter int, _ float64) {
		if iter == 10 {
			cancel()
		}
	}
	opt.ProgressDetail = func(pi ProgressInfo) { last = pi }
	res := Solve(a, x, rhs, nil, opt)
	if res.Status != StatusCancelled || res.Converged {
		t.Fatalf("status=%v want cancelled", res.Status)
	}
	if res.Iterations != 10 {
		t.Fatalf("cancelled at iteration %d, want 10", res.Iterations)
	}
	cp := res.Checkpoint
	if cp == nil || cp.Iter != 10 || len(cp.P) != n || len(cp.R) != n {
		t.Fatalf("cancellation should carry a full checkpoint, got %+v", cp)
	}
	if last.Status != StatusCancelled {
		t.Errorf("terminal ProgressDetail missing on cancellation: %v", last.Status)
	}
}

func TestResumeMatchesUninterrupted(t *testing.T) {
	n := 200
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}

	// Reference: uninterrupted solve.
	ref := make([]float64, n)
	resRef := Solve(a, ref, rhs, nil, DefaultOptions())
	if !resRef.Converged {
		t.Fatalf("reference did not converge")
	}

	// Interrupted: cancel mid-flight, then resume from the checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	x := make([]float64, n)
	opt := DefaultOptions()
	opt.Ctx = ctx
	opt.CancelCheckEvery = 1
	opt.Progress = func(iter int, _ float64) {
		if iter == resRef.Iterations/2 {
			cancel()
		}
	}
	res1 := Solve(a, x, rhs, nil, opt)
	if res1.Status != StatusCancelled || res1.Checkpoint == nil {
		t.Fatalf("expected cancellation with checkpoint, got %v", res1.Status)
	}

	opt2 := DefaultOptions()
	opt2.Resume = res1.Checkpoint
	res2 := Solve(a, x, rhs, nil, opt2)
	if !res2.Converged {
		t.Fatalf("resumed solve did not converge: %v rel=%g", res2.Status, res2.RelResidual)
	}
	// An exact resume replays the same recurrence: identical total iteration
	// count and (up to round-off) the same solution as the uninterrupted run.
	if res2.Iterations != resRef.Iterations {
		t.Errorf("resumed total iterations %d, uninterrupted %d", res2.Iterations, resRef.Iterations)
	}
	if res2.RelResidual > opt2.Tol {
		t.Errorf("resumed solve above tolerance: %g", res2.RelResidual)
	}
	for i := range x {
		if math.Abs(x[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
			t.Fatalf("x[%d]=%g differs from uninterrupted %g", i, x[i], ref[i])
		}
	}
}

func TestResumeWarmWithoutResidual(t *testing.T) {
	n := 100
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[n/2] = 1

	x := make([]float64, n)
	opt := DefaultOptions()
	opt.MaxIter = 10
	res := Solve(a, x, rhs, nil, opt)
	if res.Status != StatusMaxIter {
		t.Fatalf("want max-iter, got %v", res.Status)
	}

	// Warm resume with only the iterate: R and P must be reconstructed.
	cp := &Checkpoint{Iter: res.Checkpoint.Iter, X: res.Checkpoint.X}
	opt2 := DefaultOptions()
	opt2.Resume = cp
	res2 := Solve(a, x, rhs, nil, opt2)
	if !res2.Converged {
		t.Fatalf("warm resume did not converge: %v", res2.Status)
	}
	if res2.RelResidual > opt2.Tol {
		t.Errorf("warm resume above tolerance: %g", res2.RelResidual)
	}
}

func TestPeriodicCheckpoints(t *testing.T) {
	n := 150
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)

	var cps []Checkpoint
	opt := DefaultOptions()
	opt.CheckpointEvery = 10
	opt.OnCheckpoint = func(cp Checkpoint) { cps = append(cps, cp) }
	res := Solve(a, x, rhs, nil, opt)
	if !res.Converged {
		t.Fatalf("not converged")
	}
	if len(cps) == 0 {
		t.Fatalf("no periodic checkpoints emitted over %d iterations", res.Iterations)
	}
	for _, cp := range cps {
		if cp.Iter%10 != 0 || len(cp.X) != n || len(cp.P) != n {
			t.Fatalf("bad periodic checkpoint: iter=%d len(X)=%d len(P)=%d", cp.Iter, len(cp.X), len(cp.P))
		}
	}

	// Snapshots must own their buffers: resuming from any of them converges
	// to the same tolerance even though the original solve kept mutating x.
	mid := cps[len(cps)/2]
	y := make([]float64, n)
	opt2 := DefaultOptions()
	opt2.Resume = &mid
	res2 := Solve(a, y, rhs, nil, opt2)
	if !res2.Converged || res2.Iterations != res.Iterations {
		t.Fatalf("resume from periodic checkpoint: status=%v iters=%d want converged in %d",
			res2.Status, res2.Iterations, res.Iterations)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{0, 1, -2.5}) {
		t.Errorf("finite slice misreported")
	}
	if AllFinite([]float64{0, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Errorf("non-finite slice misreported")
	}
}
