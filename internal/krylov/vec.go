// Package krylov implements the iterative solvers of the reproduction: the
// Conjugate Gradient method and its preconditioned variant (PCG). The solve
// loop schedules its SpMV and BLAS-1 sweeps on internal/kernels (pooled,
// nnz-balanced, fused — see docs/performance.md); the straight-line vector
// kernels below remain as the serial reference semantics and for callers
// outside the hot path.
package krylov

import "math"

// Dot returns the dot product of a and b (equal lengths assumed).
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Axpy computes y += alpha * x.
func Axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Xpay computes y = x + beta * y (the search-direction update of CG).
func Xpay(x []float64, beta float64, y []float64) {
	for i := range x {
		y[i] = x[i] + beta*y[i]
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) { copy(dst, src) }

// Fill sets every element of a to v.
func Fill(a []float64, v float64) {
	for i := range a {
		a[i] = v
	}
}

// AllFinite reports whether every element of a is finite (no NaN or Inf).
// The resilience layer uses it to decide whether a breakdown checkpoint's
// iterate is worth restarting from.
func AllFinite(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
