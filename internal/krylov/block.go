// Block (multi-right-hand-side) PCG: SolveBlock runs k solves A x_j = b_j
// against one operator in a single iteration loop, so every sweep over A
// (and over the FSAI factors) serves all k columns through the SpMM
// kernels — the per-RHS matrix traffic drops k-fold, which is the
// bandwidth→compute shift the batched service path is built on.
//
// Two recurrence modes:
//
//   - Decoupled (default): each column keeps its own scalar α/β recurrence;
//     only the sparse sweeps are batched. Column j then executes exactly
//     the kernel sequence of the scalar Solve, so its result is
//     bit-identical to an unbatched solve of that column — the invariant
//     the service batcher relies on (batched responses must equal
//     unbatched ones bit-for-bit).
//
//   - Coupled (BlockOptions.Coupled): the classical O'Leary block-CG
//     recurrence with k×k Gram matrices (α and β become small dense
//     solves against PᵀAP and RᵀZ via Cholesky). It shares search
//     information across columns and typically converges in fewer
//     iterations, at the cost of bit-comparability with scalar solves.
//     With one (remaining) column the Gram systems are 1×1 and the
//     recurrence degenerates to the scalar one exactly.
//
// Both modes track convergence per column, deflate finished columns out of
// the active block (converged, broken-down, or deadline-cancelled columns
// stop consuming sweeps without poisoning the rest of the batch), and
// reuse the Status/Checkpoint/Timing plumbing of the scalar solver.
package krylov

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/kernels"
	"repro/internal/prof"
	"repro/internal/sparse"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// BlockPreconditioner is a Preconditioner that can apply itself to a
// column-major block of k residuals in one batched pass. SolveBlock uses
// it when available; otherwise it falls back to column-wise Apply (which
// is arithmetically identical, just without the batched matrix traffic).
type BlockPreconditioner interface {
	Preconditioner
	ApplyBlock(z, r []float64, k int)
}

// ApplyBlock copies each residual column (plain CG).
func (Identity) ApplyBlock(z, r []float64, k int) { copy(z, r) }

// ApplyBlock applies the diagonal scaling to each column.
func (j *Jacobi) ApplyBlock(z, r []float64, k int) {
	n := len(j.InvDiag)
	for c := 0; c < k; c++ {
		j.Apply(z[c*n:(c+1)*n], r[c*n:(c+1)*n])
	}
}

// BlockOptions configures a block solve. The scalar fields mirror Options;
// see there for semantics.
type BlockOptions struct {
	Tol     float64
	MaxIter int
	Workers int
	// RecordHistory stores per-column relative residuals (in each column's
	// Result.History) for the iterations the column was active.
	RecordHistory bool
	// Progress and ProgressDetail receive per-iteration snapshots carrying
	// the worst (largest) relative residual across the still-active
	// columns, so one batch shows up as one converging solve on live
	// observability surfaces.
	Progress       func(iter int, relres float64)
	ProgressDetail func(ProgressInfo)
	CollectTiming  bool
	Metrics        *telemetry.Registry
	// Ctx cancels the whole block cooperatively (all remaining columns
	// return StatusCancelled with resumable checkpoints).
	Ctx context.Context
	// CancelCheckEvery is the context poll cadence in iterations (default 32).
	CancelCheckEvery int
	// ColumnCtx, when non-nil (length k, nil entries allowed), cancels
	// individual columns: a column whose context expires — a batched job's
	// client deadline — deflates out of the block with StatusCancelled and
	// a warm checkpoint, while the remaining columns keep iterating.
	ColumnCtx []context.Context
	// Coupled selects the O'Leary k×k-Gram recurrence instead of the
	// default decoupled (bit-identical per column) one.
	Coupled bool
}

// BlockResult reports the outcome of a block solve.
type BlockResult struct {
	// Columns holds one scalar-shaped Result per right-hand side, in input
	// order: iterations the column was active, its typed status, final
	// relative residual, optional history, and a checkpoint on
	// non-converged termination.
	Columns []Result
	// Iterations is the number of block iterations executed (the max over
	// columns).
	Iterations int
	// Timing is the kernel-class breakdown of the whole block solve when
	// CollectTiming is set.
	Timing Timing
	// AllConverged reports whether every column converged.
	AllConverged bool
}

// SolveBlock runs preconditioned CG on A X = B for k column-major
// right-hand sides (column j of B is b[j*n:(j+1)*n]), starting from X = 0.
// The solutions overwrite x (same layout). See the package comment above
// for the recurrence modes and deflation semantics.
func SolveBlock(a *sparse.CSR, x, b []float64, k int, m Preconditioner, opt BlockOptions) BlockResult {
	if k < 1 || len(x) != k*a.Rows || len(b) != k*a.Rows {
		panic("krylov: SolveBlock dimensions")
	}
	if opt.Ctx == nil {
		return solveBlock(a, x, b, k, m, opt)
	}
	var res BlockResult
	prof.WithPhase(opt.Ctx, prof.PhaseCG, func(ctx context.Context) {
		o := opt
		o.Ctx = ctx
		res = solveBlock(a, x, b, k, m, o)
	})
	return res
}

func solveBlock(a *sparse.CSR, x, b []float64, k int, m Preconditioner, opt BlockOptions) BlockResult {
	n := a.Rows
	if m == nil {
		m = Identity{}
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10000
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.CancelCheckEvery <= 0 {
		opt.CancelCheckEvery = 32
	}
	collect := opt.CollectTiming
	var hSpMV, hPrecond, hBlas1 *telemetry.Histogram
	var iterCtr *telemetry.Counter
	if collect && opt.Metrics != nil {
		buckets := telemetry.ExpBuckets(100, 10, 8)
		hSpMV = opt.Metrics.Histogram("krylov.iter.spmv_ns", buckets)
		hPrecond = opt.Metrics.Histogram("krylov.iter.precond_ns", buckets)
		hBlas1 = opt.Metrics.Histogram("krylov.iter.blas1_ns", buckets)
		iterCtr = opt.Metrics.Counter("krylov.iterations")
	}
	eng := kernels.New(n, opt.Workers)
	if opt.Ctx != nil {
		eng.SetLabelContext(opt.Ctx)
		if lc, ok := m.(interface{ SetLabelContext(context.Context) }); ok {
			lc.SetLabelContext(opt.Ctx)
		}
	}
	var start, t0 time.Time
	if collect {
		start = time.Now()
	}
	span := trace.StartSpan(opt.Ctx, "block-cg-solve")

	res := BlockResult{Columns: make([]Result, k)}
	for c := range res.Columns {
		res.Columns[c].RelResidual = 1
		res.Columns[c].Status = StatusUnknown
	}

	// Work blocks from the size-keyed scratch pool: repeated batch solves
	// at the same (rows × k) reuse them instead of allocating.
	xw := kernels.GetBlockScratch(n * k)
	r := kernels.GetBlockScratch(n * k)
	z := kernels.GetBlockScratch(n * k)
	p := kernels.GetBlockScratch(n * k)
	q := kernels.GetBlockScratch(n * k)
	defer func() {
		kernels.PutBlockScratch(xw)
		kernels.PutBlockScratch(r)
		kernels.PutBlockScratch(z)
		kernels.PutBlockScratch(p)
		kernels.PutBlockScratch(q)
	}()

	// Slot bookkeeping: active columns live compacted in slots [0,nact);
	// colOf maps a slot back to its input column. Deflation compacts
	// stably, preserving relative column order (deterministic results).
	colOf := make([]int, k)
	bnorm := make([]float64, k) // indexed by input column
	rzv := make([]float64, k)   // per-slot rᵀz (decoupled mode)
	relv := make([]float64, k)  // per-slot current relative residual
	nact := 0

	// terminate finalizes the column in slot s (status, residual, optional
	// checkpoint) and copies its iterate to the output block. It does NOT
	// compact; callers mark and compact afterwards.
	terminate := func(s int, status Status, rel float64, cp *Checkpoint) {
		c := colOf[s]
		res.Columns[c].Status = status
		res.Columns[c].Converged = status == StatusConverged
		res.Columns[c].RelResidual = rel
		res.Columns[c].Checkpoint = cp
		copy(x[c*n:(c+1)*n], xw[s*n:(s+1)*n])
	}

	for c := 0; c < k; c++ {
		bc := b[c*n : (c+1)*n]
		bnorm[c] = eng.Norm2(bc)
		if bnorm[c] == 0 {
			Fill(x[c*n:(c+1)*n], 0)
			res.Columns[c].Status = StatusConverged
			res.Columns[c].Converged = true
			res.Columns[c].RelResidual = 0
			continue
		}
		s := nact
		colOf[s] = c
		copy(r[s*n:(s+1)*n], bc)
		Fill(xw[s*n:(s+1)*n], 0)
		rel := eng.Norm2(r[s*n:(s+1)*n]) / bnorm[c]
		relv[s] = rel
		res.Columns[c].RelResidual = rel
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			res.Columns[c].Status = StatusNaNOrInf
			if opt.RecordHistory {
				res.Columns[c].History = append(res.Columns[c].History, rel)
			}
			copy(x[c*n:(c+1)*n], xw[s*n:(s+1)*n])
			continue
		}
		if opt.RecordHistory {
			res.Columns[c].History = append(res.Columns[c].History, rel)
		}
		if rel <= opt.Tol {
			res.Columns[c].Status = StatusConverged
			res.Columns[c].Converged = true
			copy(x[c*n:(c+1)*n], xw[s*n:(s+1)*n])
			continue
		}
		nact++
	}

	finish := func() BlockResult {
		if collect {
			res.Timing.Total = time.Since(start)
		}
		res.AllConverged = true
		for c := range res.Columns {
			if !res.Columns[c].Converged {
				res.AllConverged = false
			}
			if res.Columns[c].Iterations > res.Iterations {
				res.Iterations = res.Columns[c].Iterations
			}
		}
		span.SetAttr("columns", fmt.Sprint(k))
		span.SetAttr("iterations", fmt.Sprint(res.Iterations))
		span.End()
		return res
	}

	applyBlock := func(ka int) {
		if collect {
			t0 = time.Now()
		}
		if bp, ok := m.(BlockPreconditioner); ok {
			bp.ApplyBlock(z[:ka*n], r[:ka*n], ka)
		} else {
			for s := 0; s < ka; s++ {
				m.Apply(z[s*n:(s+1)*n], r[s*n:(s+1)*n])
			}
		}
		if collect {
			d := time.Since(t0)
			res.Timing.Precond += d
			hPrecond.Observe(float64(d.Nanoseconds()))
		}
	}

	if nact == 0 {
		return finish()
	}

	// Initial preconditioned residual, search block and Gram state.
	applyBlock(nact)
	var gamma, gnew, gfac, alphaM, betaM []float64
	if opt.Coupled {
		gamma = make([]float64, k*k)
		gnew = make([]float64, k*k)
		gfac = make([]float64, k*k)
		alphaM = make([]float64, k*k)
		betaM = make([]float64, k*k)
	}
	copy(p[:nact*n], z[:nact*n])
	if opt.Coupled && nact > 1 {
		eng.BlockDot(r[:nact*n], z[:nact*n], nact, gamma)
		for s := 0; s < nact; s++ {
			rzv[s] = gamma[s+s*nact]
		}
	} else {
		for s := 0; s < nact; s++ {
			rzv[s] = eng.Dot(r[s*n:(s+1)*n], z[s*n:(s+1)*n])
		}
		if opt.Coupled {
			gamma[0] = rzv[0]
		}
	}

	// dead[s] is set when slot s terminated this iteration and must be
	// compacted out before the next one.
	dead := make([]bool, k)
	rr := make([]float64, k)

	// compact removes dead slots, stably. In coupled mode the Gram matrix
	// over the surviving slots is the corresponding submatrix of gamma.
	compact := func() {
		alive := 0
		for s := 0; s < nact; s++ {
			if dead[s] {
				continue
			}
			if s != alive {
				copy(xw[alive*n:(alive+1)*n], xw[s*n:(s+1)*n])
				copy(r[alive*n:(alive+1)*n], r[s*n:(s+1)*n])
				copy(p[alive*n:(alive+1)*n], p[s*n:(s+1)*n])
				colOf[alive] = colOf[s]
				rzv[alive] = rzv[s]
				relv[alive] = relv[s]
			}
			alive++
		}
		if opt.Coupled && alive != nact {
			// gamma indices are slot-based: extract the surviving
			// rows/columns in their (stable) new order.
			keep := make([]int, 0, alive)
			for s := 0; s < nact; s++ {
				if !dead[s] {
					keep = append(keep, s)
				}
			}
			for j, oj := range keep {
				for i, oi := range keep {
					gnew[i+j*alive] = gamma[oi+oj*nact]
				}
			}
			copy(gamma[:alive*alive], gnew[:alive*alive])
		}
		for s := 0; s < nact; s++ {
			dead[s] = false
		}
		nact = alive
	}

	maxIter := opt.MaxIter
	for it := 0; nact > 0 && it < maxIter; it++ {
		if it%opt.CancelCheckEvery == 0 {
			if opt.Ctx != nil {
				select {
				case <-opt.Ctx.Done():
					for s := 0; s < nact; s++ {
						res.Columns[colOf[s]].Iterations = it
						cp := snapshotCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n], p[s*n:(s+1)*n], rzv[s])
						if opt.Coupled {
							cp = warmCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n])
						}
						terminate(s, StatusCancelled, relv[s], cp)
					}
					nact = 0
					return finish()
				default:
				}
			}
			if opt.ColumnCtx != nil {
				for s := 0; s < nact; s++ {
					cc := opt.ColumnCtx[colOf[s]]
					if cc == nil {
						continue
					}
					select {
					case <-cc.Done():
						// Deadline-expired column: deflate it out with a
						// resumable checkpoint; the batch keeps going.
						res.Columns[colOf[s]].Iterations = it
						cp := snapshotCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n], p[s*n:(s+1)*n], rzv[s])
						if opt.Coupled {
							cp = warmCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n])
						}
						terminate(s, StatusCancelled, relv[s], cp)
						dead[s] = true
					default:
					}
				}
				compact()
				if nact == 0 {
					return finish()
				}
			}
		}
		ka := nact

		if collect {
			t0 = time.Now()
		}
		eng.SpMM(a, q[:ka*n], p[:ka*n], ka)
		if collect {
			d := time.Since(t0)
			res.Timing.SpMV += d
			hSpMV.Observe(float64(d.Nanoseconds()))
			t0 = time.Now()
		}

		if opt.Coupled && ka > 1 {
			// δ = PᵀQ; Alpha = δ⁻¹γ via Cholesky. A failed factorization is
			// the block analogue of the scalar pᵀAp breakdown: every active
			// column ends with its last good iterate as a warm checkpoint.
			eng.BlockDot(p[:ka*n], q[:ka*n], ka, gfac)
			nan := hasNaN(gfac[:ka*ka])
			if nan || !cholFactor(gfac, ka) {
				status := StatusIndefinite
				if nan {
					status = StatusNaNOrInf
				}
				for s := 0; s < ka; s++ {
					res.Columns[colOf[s]].Iterations = it
					rel := eng.Norm2(r[s*n:(s+1)*n]) / bnorm[colOf[s]]
					terminate(s, status, rel, warmCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n]))
				}
				nact = 0
				if collect {
					res.Timing.BLAS1 += time.Since(t0)
				}
				return finish()
			}
			copy(alphaM[:ka*ka], gamma[:ka*ka])
			cholSolve(gfac, ka, alphaM)
			eng.BlockXRUpdate(alphaM[:ka*ka], p[:ka*n], q[:ka*n], xw[:ka*n], r[:ka*n], ka, rr)
			for s := 0; s < ka; s++ {
				relv[s] = math.Sqrt(rr[s]) / bnorm[colOf[s]]
			}
		} else {
			// Decoupled: per-column scalar recurrence over the batched
			// sweeps — the exact kernel sequence of the scalar solver.
			for s := 0; s < ka; s++ {
				ps, qs := p[s*n:(s+1)*n], q[s*n:(s+1)*n]
				pap := eng.Dot(ps, qs)
				if pap <= 0 || math.IsNaN(pap) || math.IsInf(pap, 0) {
					status := StatusIndefinite
					if math.IsNaN(pap) || math.IsInf(pap, 0) {
						status = StatusNaNOrInf
					}
					rel := eng.Norm2(r[s*n:(s+1)*n]) / bnorm[colOf[s]]
					res.Columns[colOf[s]].Iterations = it
					relv[s] = rel
					if opt.RecordHistory {
						res.Columns[colOf[s]].History = append(res.Columns[colOf[s]].History, rel)
					}
					terminate(s, status, rel, warmCheckpoint(it, xw[s*n:(s+1)*n], r[s*n:(s+1)*n]))
					dead[s] = true
					continue
				}
				alpha := rzv[s] / pap
				rr[s] = eng.XRUpdate(alpha, ps, qs, xw[s*n:(s+1)*n], r[s*n:(s+1)*n])
				relv[s] = math.Sqrt(rr[s]) / bnorm[colOf[s]]
			}
		}
		if collect {
			d := time.Since(t0)
			res.Timing.BLAS1 += d
			hBlas1.Observe(float64(d.Nanoseconds()))
		}
		iterCtr.Add(int64(ka))

		// Convergence / NaN marking for the columns updated this iteration.
		// worst tracks the largest relative residual among them (converged
		// columns included, so the final progress emission carries the
		// closing residual like the scalar solver's does).
		worst := 0.0
		for s := 0; s < ka; s++ {
			if dead[s] {
				continue
			}
			c := colOf[s]
			rel := relv[s]
			res.Columns[c].Iterations = it + 1
			res.Columns[c].RelResidual = rel
			if opt.RecordHistory {
				res.Columns[c].History = append(res.Columns[c].History, rel)
			}
			if rel > worst || math.IsNaN(rel) {
				worst = rel
			}
			switch {
			case math.IsNaN(rel) || math.IsInf(rel, 0):
				terminate(s, StatusNaNOrInf, rel, nil)
				dead[s] = true
			case rel <= opt.Tol:
				terminate(s, StatusConverged, rel, nil)
				dead[s] = true
			}
		}
		compact()
		if opt.Progress != nil {
			opt.Progress(it+1, worst)
		}
		if opt.ProgressDetail != nil {
			info := ProgressInfo{Iteration: it + 1, RelRes: worst, Converged: nact == 0, Timing: res.Timing}
			if collect {
				info.Timing.Total = time.Since(start)
			}
			opt.ProgressDetail(info)
		}
		if nact == 0 {
			return finish()
		}

		applyBlock(nact)
		if collect {
			t0 = time.Now()
		}
		ka = nact
		if opt.Coupled && ka > 1 {
			// γ_new = RᵀZ; Beta = γ⁻¹γ_new (γ over the surviving slots).
			eng.BlockDot(r[:ka*n], z[:ka*n], ka, gnew)
			copy(gfac[:ka*ka], gamma[:ka*ka])
			nan := hasNaN(gfac[:ka*ka])
			if nan || !cholFactor(gfac, ka) {
				status := StatusIndefinite
				if nan {
					status = StatusNaNOrInf
				}
				for s := 0; s < ka; s++ {
					res.Columns[colOf[s]].Iterations = it + 1
					terminate(s, status, relv[s], warmCheckpoint(it+1, xw[s*n:(s+1)*n], r[s*n:(s+1)*n]))
				}
				nact = 0
				if collect {
					res.Timing.BLAS1 += time.Since(t0)
				}
				return finish()
			}
			copy(betaM[:ka*ka], gnew[:ka*ka])
			cholSolve(gfac, ka, betaM)
			eng.BlockXpay(z[:ka*n], betaM[:ka*ka], p[:ka*n], ka)
			copy(gamma[:ka*ka], gnew[:ka*ka])
			for s := 0; s < ka; s++ {
				rzv[s] = gamma[s+s*ka]
			}
		} else {
			for s := 0; s < ka; s++ {
				rs, zs := r[s*n:(s+1)*n], z[s*n:(s+1)*n]
				rzNew := eng.Dot(rs, zs)
				beta := rzNew / rzv[s]
				eng.Xpay(zs, beta, p[s*n:(s+1)*n])
				rzv[s] = rzNew
			}
			if opt.Coupled && ka == 1 {
				gamma[0] = rzv[0]
			}
		}
		if collect {
			res.Timing.BLAS1 += time.Since(t0)
		}
	}

	// Budget exhausted: the remaining columns carry full checkpoints so a
	// caller can grant more budget and resume them individually.
	for s := 0; s < nact; s++ {
		res.Columns[colOf[s]].Iterations = maxIter
		cp := snapshotCheckpoint(maxIter, xw[s*n:(s+1)*n], r[s*n:(s+1)*n], p[s*n:(s+1)*n], rzv[s])
		if opt.Coupled {
			// The coupled search directions are coupled across columns; a
			// scalar resume can restart from the iterate but not the block
			// recurrence.
			cp = warmCheckpoint(maxIter, xw[s*n:(s+1)*n], r[s*n:(s+1)*n])
		}
		terminate(s, StatusMaxIter, relv[s], cp)
	}
	nact = 0
	return finish()
}

// hasNaN reports whether the small Gram matrix picked up a NaN/Inf.
func hasNaN(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// cholFactor factors the column-major k×k SPD matrix a in place (lower
// triangle; the strict upper triangle is left untouched). It returns false
// on a non-positive pivot — the breakdown-safe guard of the block
// recurrence, the k×k analogue of the scalar pᵀAp ≤ 0 check.
func cholFactor(a []float64, k int) bool {
	for j := 0; j < k; j++ {
		d := a[j+j*k]
		for l := 0; l < j; l++ {
			d -= a[j+l*k] * a[j+l*k]
		}
		if !(d > 0) || math.IsInf(d, 0) {
			return false
		}
		d = math.Sqrt(d)
		a[j+j*k] = d
		for i := j + 1; i < k; i++ {
			s := a[i+j*k]
			for l := 0; l < j; l++ {
				s -= a[i+l*k] * a[j+l*k]
			}
			a[i+j*k] = s / d
		}
	}
	return true
}

// cholSolve solves L Lᵀ X = B in place for a column-major k×k
// right-hand-side block B, with L the factor computed by cholFactor.
func cholSolve(l []float64, k int, b []float64) {
	for col := 0; col < k; col++ {
		bc := b[col*k : (col+1)*k]
		for i := 0; i < k; i++ {
			s := bc[i]
			for j := 0; j < i; j++ {
				s -= l[i+j*k] * bc[j]
			}
			bc[i] = s / l[i+i*k]
		}
		for i := k - 1; i >= 0; i-- {
			s := bc[i]
			for j := i + 1; j < k; j++ {
				s -= l[j+i*k] * bc[j]
			}
			bc[i] = s / l[i+i*k]
		}
	}
}
