package krylov

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/telemetry"
)

func tridiag(n int, lo, di, up float64) *sparse.CSR {
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, di)
		if i > 0 {
			b.Add(i, i-1, lo)
		}
		if i < n-1 {
			b.Add(i, i+1, up)
		}
	}
	return b.ToCSR()
}

func TestVectorKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot=%g", Dot(a, b))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Errorf("Norm2 wrong")
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Errorf("Axpy=%v", y)
	}
	Xpay(a, 10, y)
	if y[0] != 31 || y[1] != 52 || y[2] != 73 {
		t.Errorf("Xpay=%v", y)
	}
	Fill(y, 0)
	if y[0] != 0 || y[2] != 0 {
		t.Errorf("Fill=%v", y)
	}
}

func TestCGSolvesDiagonal(t *testing.T) {
	n := 10
	b := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, float64(i+1))
	}
	a := b.ToCSR()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	x := make([]float64, n)
	res := Solve(a, x, rhs, nil, DefaultOptions())
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Fatalf("x[%d]=%g want 1", i, x[i])
		}
	}
}

func TestCGExactnessInNSteps(t *testing.T) {
	// CG on an n-dimensional SPD system converges in at most n iterations
	// (exact arithmetic); allow a tiny slack for round-off.
	n := 16
	a := tridiag(n, -1, 2, -1)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)
	res := Solve(a, x, rhs, nil, Options{Tol: 1e-10, MaxIter: n + 2})
	if !res.Converged {
		t.Fatalf("CG needed more than n iterations: %+v", res)
	}
}

func TestCGResidualMatchesReported(t *testing.T) {
	n := 50
	a := tridiag(n, -1, 2.1, -1)
	rng := rand.New(rand.NewSource(1))
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res := Solve(a, x, rhs, nil, DefaultOptions())
	// Recompute the true residual.
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = rhs[i] - r[i]
	}
	rel := Norm2(r) / Norm2(rhs)
	if math.Abs(rel-res.RelResidual) > 1e-10 {
		t.Errorf("reported %g actual %g", res.RelResidual, rel)
	}
	if !res.Converged || rel > 1e-8 {
		t.Errorf("convergence claim wrong: %+v rel=%g", res, rel)
	}
}

func TestJacobiPreconditioner(t *testing.T) {
	// A badly diagonally-scaled system: Jacobi must cut iterations.
	n := 200
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%5))
		b.Add(i, i, 2*scale)
		if i > 0 {
			b.Add(i, i-1, -0.5)
		}
		if i < n-1 {
			b.Add(i, i+1, -0.5)
		}
	}
	a := b.ToCSR()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, n)
	plain := Solve(a, x, rhs, nil, DefaultOptions())
	jac := Solve(a, x, rhs, NewJacobi(a), DefaultOptions())
	if !plain.Converged || !jac.Converged {
		t.Fatalf("convergence failed: plain=%+v jac=%+v", plain, jac)
	}
	if jac.Iterations >= plain.Iterations {
		t.Errorf("Jacobi (%d) should beat plain CG (%d)", jac.Iterations, plain.Iterations)
	}
}

func TestJacobiZeroDiagonalFallback(t *testing.T) {
	a, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	j := NewJacobi(a)
	if j.InvDiag[0] != 1 || j.InvDiag[1] != 1 {
		t.Errorf("zero diagonal fallback wrong: %v", j.InvDiag)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := tridiag(5, -1, 2, -1)
	x := []float64{1, 2, 3, 4, 5}
	res := Solve(a, x, make([]float64, 5), nil, DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero RHS: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Errorf("x should be zeroed, got %v", x)
		}
	}
}

func TestSolveMaxIterCap(t *testing.T) {
	n := 400
	a := tridiag(n, -1, 2.000001, -1) // nearly singular: slow convergence
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)
	res := Solve(a, x, rhs, nil, Options{Tol: 1e-14, MaxIter: 5})
	if res.Converged {
		t.Error("should not converge in 5 iterations")
	}
	if res.Iterations != 5 {
		t.Errorf("iterations=%d want 5", res.Iterations)
	}
}

func TestSolveHistory(t *testing.T) {
	a := tridiag(20, -1, 2.5, -1)
	rhs := make([]float64, 20)
	rhs[3] = 1
	x := make([]float64, 20)
	res := Solve(a, x, rhs, nil, Options{Tol: 1e-8, MaxIter: 100, RecordHistory: true})
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history length %d, want %d", len(res.History), res.Iterations+1)
	}
	if res.History[0] != 1 {
		t.Error("history must start at 1")
	}
	last := res.History[len(res.History)-1]
	if math.Abs(last-res.RelResidual) > 1e-15 {
		t.Errorf("history end %g != final %g", last, res.RelResidual)
	}
}

func TestSolveBreakdownOnIndefinite(t *testing.T) {
	// Indefinite matrix: pᵀAp can go non-positive; Solve must return
	// gracefully with Converged=false rather than NaN-spin.
	a, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: -1},
	})
	x := make([]float64, 2)
	res := Solve(a, x, []float64{1, 1}, nil, DefaultOptions())
	if res.Converged {
		t.Error("indefinite system reported converged")
	}
	for _, v := range x {
		if math.IsNaN(v) {
			t.Error("NaN leaked into solution")
		}
	}
}

func TestSolveWorkersDefaultResolved(t *testing.T) {
	// Workers <= 0 is documented as "all CPUs": Solve must resolve it to
	// runtime.GOMAXPROCS(0) up front instead of handing the sentinel to the
	// SpMV kernels, and the answer must match the serial solve.
	n := 120
	a := tridiag(n, -1, 2.3, -1)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	serial := make([]float64, n)
	ref := Solve(a, serial, rhs, nil, Options{Tol: 1e-10, MaxIter: 1000, Workers: 1})
	for _, workers := range []int{0, -1, -8} {
		x := make([]float64, n)
		res := Solve(a, x, rhs, nil, Options{Tol: 1e-10, MaxIter: 1000, Workers: workers})
		if !res.Converged {
			t.Fatalf("Workers=%d did not converge: %+v", workers, res)
		}
		if res.Iterations != ref.Iterations {
			t.Errorf("Workers=%d iterations %d, serial %d", workers, res.Iterations, ref.Iterations)
		}
		for i := range x {
			if math.Abs(x[i]-serial[i]) > 1e-10 {
				t.Fatalf("Workers=%d x[%d]=%g, serial %g", workers, i, x[i], serial[i])
			}
		}
	}
}

func TestSolveBreakdownRecordsFinalHistory(t *testing.T) {
	// On the CG breakdown path (pap <= 0), a recorded history must still end
	// with the reported final relative residual rather than being silently
	// truncated. diag(1, -1) breaks down immediately: pᵀAp = 0.
	a, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: -1},
	})
	x := make([]float64, 2)
	res := Solve(a, x, []float64{1, 1}, nil, Options{Tol: 1e-8, MaxIter: 50, RecordHistory: true})
	if res.Converged {
		t.Fatal("indefinite system reported converged")
	}
	if len(res.History) < 2 {
		t.Fatalf("history %v: breakdown entry missing", res.History)
	}
	if len(res.History) != res.Iterations+2 {
		t.Errorf("history length %d, want iterations+2 = %d", len(res.History), res.Iterations+2)
	}
	last := res.History[len(res.History)-1]
	if math.Abs(last-res.RelResidual) > 1e-15 {
		t.Errorf("history end %g != final residual %g", last, res.RelResidual)
	}
}

func TestSolveProgressCallback(t *testing.T) {
	a := tridiag(30, -1, 2.5, -1)
	rhs := make([]float64, 30)
	rhs[0] = 1
	x := make([]float64, 30)
	var iters []int
	var rels []float64
	res := Solve(a, x, rhs, nil, Options{Tol: 1e-8, MaxIter: 200, Progress: func(it int, rel float64) {
		iters = append(iters, it)
		rels = append(rels, rel)
	}})
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("progress called %d times, want %d", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("progress iteration %d at call %d", it, i)
		}
	}
	if got := rels[len(rels)-1]; math.Abs(got-res.RelResidual) > 1e-15 {
		t.Errorf("last progress residual %g != final %g", got, res.RelResidual)
	}
}

func TestSolveTimingBreakdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := tridiag(200, -1, 2.1, -1)
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, 200)
	res := Solve(a, x, rhs, NewJacobi(a), Options{
		Tol: 1e-8, MaxIter: 1000, CollectTiming: true, Metrics: reg,
	})
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	tm := res.Timing
	if tm.Total <= 0 || tm.SpMV <= 0 || tm.Precond <= 0 || tm.BLAS1 <= 0 {
		t.Fatalf("timing sections not populated: %+v", tm)
	}
	if sum := tm.SpMV + tm.Precond + tm.BLAS1; sum > tm.Total {
		t.Errorf("section sum %v exceeds total %v", sum, tm.Total)
	}
	snap := reg.Snapshot()
	if snap.Counters["krylov.iterations"] != int64(res.Iterations) {
		t.Errorf("iterations counter %d, want %d", snap.Counters["krylov.iterations"], res.Iterations)
	}
	for _, name := range []string{"krylov.iter.spmv_ns", "krylov.iter.precond_ns", "krylov.iter.blas1_ns"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %q missing or empty", name)
		}
	}
	// Timing off: breakdown must stay zero.
	x2 := make([]float64, 200)
	res2 := Solve(a, x2, rhs, NewJacobi(a), Options{Tol: 1e-8, MaxIter: 1000})
	if res2.Timing != (Timing{}) {
		t.Errorf("timing collected while disabled: %+v", res2.Timing)
	}
}

func TestSolveParallelWorkersMatchSerial(t *testing.T) {
	n := 300
	a := tridiag(n, -1, 2.2, -1)
	rng := rand.New(rand.NewSource(2))
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	r1 := Solve(a, x1, rhs, nil, Options{Tol: 1e-8, MaxIter: 1000, Workers: 1})
	r2 := Solve(a, x2, rhs, nil, Options{Tol: 1e-8, MaxIter: 1000, Workers: 4})
	if r1.Iterations != r2.Iterations {
		t.Errorf("iteration mismatch: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-12 {
			t.Fatalf("x[%d] differs: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestSolveProgressDetail(t *testing.T) {
	a := tridiag(30, -1, 2.5, -1)
	rhs := make([]float64, 30)
	rhs[0] = 1
	x := make([]float64, 30)
	var infos []ProgressInfo
	res := Solve(a, x, rhs, nil, Options{
		Tol: 1e-8, MaxIter: 200, CollectTiming: true,
		ProgressDetail: func(pi ProgressInfo) { infos = append(infos, pi) },
	})
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if len(infos) != res.Iterations {
		t.Fatalf("detail called %d times, want %d", len(infos), res.Iterations)
	}
	for i, pi := range infos {
		if pi.Iteration != i+1 {
			t.Fatalf("iteration %d at call %d", pi.Iteration, i)
		}
		if pi.Converged != (i == len(infos)-1) {
			t.Fatalf("converged=%v at call %d of %d", pi.Converged, i, len(infos))
		}
		if pi.Timing.Total <= 0 {
			t.Fatalf("call %d: running Total = %v, want > 0 with CollectTiming", i, pi.Timing.Total)
		}
		if i > 0 && pi.Timing.Total < infos[i-1].Timing.Total {
			t.Fatalf("running Total decreased at call %d", i)
		}
	}
	last := infos[len(infos)-1]
	if math.Abs(last.RelRes-res.RelResidual) > 1e-15 {
		t.Errorf("last detail residual %g != final %g", last.RelRes, res.RelResidual)
	}

	// Without CollectTiming the snapshot carries a zero Timing.
	x = make([]float64, 30)
	var zero ProgressInfo
	Solve(a, x, rhs, nil, Options{Tol: 1e-8, MaxIter: 200,
		ProgressDetail: func(pi ProgressInfo) { zero = pi }})
	if zero.Timing != (Timing{}) {
		t.Errorf("Timing = %+v without CollectTiming, want zero", zero.Timing)
	}
}
