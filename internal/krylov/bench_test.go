package krylov

import (
	"fmt"
	"testing"

	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// BenchmarkPCGIteration times the exact kernel sequence of one PCG
// iteration on the engine — SpMV with A, dot for the step length, the fused
// iterate/residual update, the two-SpMV FSAI-style preconditioner
// application, dot and search-direction update — and proves it performs
// zero heap allocations per iteration in steady state.
func BenchmarkPCGIteration(b *testing.B) {
	n := 250000
	a := tridiag(n, -1, 2.5, -1)
	g := tridiag(n, -0.2, 1, 0) // stand-in lower-triangular factor
	gt := g.Transpose()
	w := parallel.MaxWorkers()
	a.PartitionPlan(w)
	g.PartitionPlan(w)
	gt.PartitionPlan(w)
	eng := kernels.New(n, w)

	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	tmp := make([]float64, n)
	for i := range r {
		r[i] = float64(i%13) - 6
		p[i] = r[i]
	}

	b.ReportAllocs()
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SpMV(a, ap, p)        // q = A p
		pap := eng.Dot(p, ap)     // pᵀq
		alpha := 1e-7 / (pap + 1) // bounded step keeps vectors finite
		_ = eng.XRUpdate(alpha, p, ap, x, r)
		eng.SpMV(g, tmp, r) // z = Gᵀ(G r)
		eng.SpMV(gt, z, tmp)
		rz := eng.Dot(r, z)
		beta := rz / (rz + 1)
		eng.Xpay(z, beta, p) // p = z + beta p
	}
}

// benchBand builds a diagonally dominant banded matrix with bw off-diagonals
// on each side (~2·bw+1 entries per row) — the same density class as the
// sparse-package benchmark fixture, representative of FSAI pattern work.
func benchBand(n, bw int, lowerOnly bool) *sparse.CSR {
	c := sparse.NewCOO(n, n, n*(2*bw+1))
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(2*bw)+1.5)
		for d := 1; d <= bw; d++ {
			if i-d >= 0 {
				c.Add(i, i-d, -0.5/float64(d))
			}
			if !lowerOnly && i+d < n {
				c.Add(i, i+d, -0.5/float64(d))
			}
		}
	}
	return c.ToCSR()
}

// BenchmarkBlockPCGIteration times the decoupled block-PCG iteration body —
// the exact kernel sequence SolveBlock runs per iteration — across block
// widths. The figure of merit is ns/rhs: at k=8 the three matrix streams
// (A, G, Gᵀ) are each read once for eight columns, so per-RHS time should
// drop well past the ≥1.5× acceptance gate versus k=1.
func BenchmarkBlockPCGIteration(b *testing.B) {
	n := 250000
	a := benchBand(n, 5, false)
	g := benchBand(n, 5, true) // stand-in lower-triangular factor
	gt := g.Transpose()
	w := parallel.MaxWorkers()
	a.PartitionPlan(w)
	g.PartitionPlan(w)
	gt.PartitionPlan(w)
	eng := kernels.New(n, w)

	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			x := make([]float64, n*k)
			r := make([]float64, n*k)
			z := make([]float64, n*k)
			p := make([]float64, n*k)
			q := make([]float64, n*k)
			tmp := make([]float64, n*k)
			for i := range r {
				r[i] = float64(i%13) - 6
				p[i] = r[i]
			}
			b.ReportAllocs()
			b.SetBytes(int64(n * k * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.SpMM(a, q, p, k) // Q = A P, one matrix pass for k columns
				for j := 0; j < k; j++ {
					pj, qj := p[j*n:(j+1)*n], q[j*n:(j+1)*n]
					pap := eng.Dot(pj, qj)
					alpha := 1e-7 / (pap + 1)
					_ = eng.XRUpdate(alpha, pj, qj, x[j*n:(j+1)*n], r[j*n:(j+1)*n])
				}
				eng.SpMM(g, tmp, r, k) // Z = Gᵀ(G R)
				eng.SpMM(gt, z, tmp, k)
				for j := 0; j < k; j++ {
					rj, zj := r[j*n:(j+1)*n], z[j*n:(j+1)*n]
					rz := eng.Dot(rj, zj)
					beta := rz / (rz + 1)
					eng.Xpay(zj, beta, p[j*n:(j+1)*n])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/rhs")
		})
	}
}
