package krylov

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/parallel"
)

// BenchmarkPCGIteration times the exact kernel sequence of one PCG
// iteration on the engine — SpMV with A, dot for the step length, the fused
// iterate/residual update, the two-SpMV FSAI-style preconditioner
// application, dot and search-direction update — and proves it performs
// zero heap allocations per iteration in steady state.
func BenchmarkPCGIteration(b *testing.B) {
	n := 250000
	a := tridiag(n, -1, 2.5, -1)
	g := tridiag(n, -0.2, 1, 0) // stand-in lower-triangular factor
	gt := g.Transpose()
	w := parallel.MaxWorkers()
	a.PartitionPlan(w)
	g.PartitionPlan(w)
	gt.PartitionPlan(w)
	eng := kernels.New(n, w)

	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	tmp := make([]float64, n)
	for i := range r {
		r[i] = float64(i%13) - 6
		p[i] = r[i]
	}

	b.ReportAllocs()
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SpMV(a, ap, p)        // q = A p
		pap := eng.Dot(p, ap)     // pᵀq
		alpha := 1e-7 / (pap + 1) // bounded step keeps vectors finite
		_ = eng.XRUpdate(alpha, p, ap, x, r)
		eng.SpMV(g, tmp, r) // z = Gᵀ(G r)
		eng.SpMV(gt, z, tmp)
		rz := eng.Dot(r, z)
		beta := rz / (rz + 1)
		eng.Xpay(z, beta, p) // p = z + beta p
	}
}
