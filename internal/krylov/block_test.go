package krylov

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sparse"
)

// fsaiLike is a two-factor test preconditioner applying z = Gᵀ(G r) with
// the same engine kernel sequence the FSAI preconditioner uses, including
// the batched BlockPreconditioner path. It lets this package prove the
// block solver's bit-identity claims without importing internal/core.
type fsaiLike struct {
	g, gt *sparse.CSR
	eng   *kernels.Engine
	w     int
	tmp   []float64
	btmp  []float64
}

func newFsaiLike(n, w int) *fsaiLike {
	g := tridiag(n, -0.2, 1, 0)
	f := &fsaiLike{g: g, gt: g.Transpose(), w: w, tmp: make([]float64, n)}
	if w > 1 {
		f.eng = kernels.New(n, w)
	}
	return f
}

func (f *fsaiLike) Apply(z, r []float64) {
	if f.w == 1 {
		f.g.MulVec(f.tmp, r)
		f.gt.MulVec(z, f.tmp)
		return
	}
	f.eng.SpMV(f.g, f.tmp, r)
	f.eng.SpMV(f.gt, z, f.tmp)
}

func (f *fsaiLike) ApplyBlock(z, r []float64, k int) {
	if k == 1 {
		f.Apply(z, r)
		return
	}
	if len(f.btmp) != f.g.Rows*k {
		f.btmp = make([]float64, f.g.Rows*k)
	}
	if f.w == 1 {
		f.g.MulMat(f.btmp, r, k)
		f.gt.MulMat(z, f.btmp, k)
		return
	}
	f.eng.SpMM(f.g, f.btmp, r, k)
	f.eng.SpMM(f.gt, z, f.btmp, k)
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestSolveBlockK1BitIdentical is the property test of the satellite task:
// SolveBlock with k = 1 executes the exact kernel sequence of the scalar
// solver, in both recurrence modes, for every preconditioner kind and
// worker count — results, histories and iteration counts match bit for bit.
func TestSolveBlockK1BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{300, 1200} {
		a := tridiag(n, -1, 2.5, -1)
		b := randVec(rng, n)
		for _, w := range []int{1, 3} {
			for _, coupled := range []bool{false, true} {
				for pi, m := range []Preconditioner{nil, NewJacobi(a), newFsaiLike(n, w)} {
					xs := make([]float64, n)
					rs := Solve(a, xs, b, m, Options{Tol: 1e-10, MaxIter: 500, Workers: w, RecordHistory: true})
					xb := make([]float64, n)
					rb := SolveBlock(a, xb, b, 1, m, BlockOptions{
						Tol: 1e-10, MaxIter: 500, Workers: w, RecordHistory: true, Coupled: coupled,
					})
					c := rb.Columns[0]
					if c.Status != rs.Status || c.Iterations != rs.Iterations || c.RelResidual != rs.RelResidual {
						t.Fatalf("n=%d w=%d coupled=%v precond=%d: result mismatch scalar=%+v block=%+v",
							n, w, coupled, pi, rs, c)
					}
					for i := range xs {
						if xs[i] != xb[i] {
							t.Fatalf("n=%d w=%d coupled=%v precond=%d: x[%d] %v != %v (not bit-identical)",
								n, w, coupled, pi, i, xb[i], xs[i])
						}
					}
					if len(c.History) != len(rs.History) {
						t.Fatalf("history length %d != %d", len(c.History), len(rs.History))
					}
					for i := range rs.History {
						if c.History[i] != rs.History[i] {
							t.Fatalf("history[%d] %v != %v", i, c.History[i], rs.History[i])
						}
					}
				}
			}
		}
	}
}

// TestSolveBlockColumnsBitIdenticalToScalar is the invariant the service
// batcher depends on: in the default decoupled mode, every column of a
// k-wide block solve is bit-identical to the unbatched scalar solve of
// that column — including on the pooled kernel path and with columns that
// converge at different iterations (deflation).
func TestSolveBlockColumnsBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 40000
	if kernels.ParallelMinLen() > n {
		t.Fatalf("test needs n above the pooled threshold")
	}
	a := tridiag(n, -1, 2.5, -1)
	const k = 5
	w := 4
	m := newFsaiLike(n, w)
	b := make([]float64, n*k)
	copy(b[:n], randVec(rng, n))
	// Column 1 converges immediately-ish (a near-eigenvector scale), the
	// rest are generic — forcing deflation while others keep iterating.
	for i := 0; i < n; i++ {
		b[n+i] = 1e-3
	}
	copy(b[2*n:3*n], randVec(rng, n))
	copy(b[3*n:4*n], randVec(rng, n))
	for i := 0; i < n; i++ {
		b[4*n+i] = float64(i%17) - 8
	}

	x := make([]float64, n*k)
	br := SolveBlock(a, x, b, k, m, BlockOptions{Tol: 1e-8, MaxIter: 300, Workers: w})
	if !br.AllConverged {
		t.Fatalf("block solve did not converge: %+v", br.Columns)
	}
	iters := map[int]bool{}
	for j := 0; j < k; j++ {
		xs := make([]float64, n)
		rs := Solve(a, xs, b[j*n:(j+1)*n], m, Options{Tol: 1e-8, MaxIter: 300, Workers: w})
		c := br.Columns[j]
		if c.Iterations != rs.Iterations || c.Status != rs.Status || c.RelResidual != rs.RelResidual {
			t.Fatalf("col %d: scalar {it=%d st=%v rel=%v} block {it=%d st=%v rel=%v}",
				j, rs.Iterations, rs.Status, rs.RelResidual, c.Iterations, c.Status, c.RelResidual)
		}
		iters[c.Iterations] = true
		for i := 0; i < n; i++ {
			if x[j*n+i] != xs[i] {
				t.Fatalf("col %d x[%d]: block %v != scalar %v (not bit-identical)", j, i, x[j*n+i], xs[i])
			}
		}
	}
	if len(iters) < 2 {
		t.Fatalf("expected columns to deflate at different iterations, all at %v", br.Columns[0].Iterations)
	}
}

// TestSolveBlockCoupled checks the O'Leary mode: all columns converge to
// the scalar solutions (within tolerance — the coupled recurrence is not
// bit-comparable) and typically in no more iterations than scalar CG.
func TestSolveBlockCoupled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 600
	a := tridiag(n, -1, 2.2, -1)
	const k = 4
	b := make([]float64, n*k)
	for j := 0; j < k; j++ {
		copy(b[j*n:(j+1)*n], randVec(rng, n))
	}
	m := NewJacobi(a)
	x := make([]float64, n*k)
	br := SolveBlock(a, x, b, k, m, BlockOptions{Tol: 1e-9, MaxIter: 2000, Workers: 1, Coupled: true})
	if !br.AllConverged {
		t.Fatalf("coupled block solve did not converge: %+v", br.Columns)
	}
	for j := 0; j < k; j++ {
		xs := make([]float64, n)
		rs := Solve(a, xs, b[j*n:(j+1)*n], m, Options{Tol: 1e-9, MaxIter: 2000, Workers: 1})
		if br.Columns[j].Iterations > rs.Iterations {
			t.Logf("col %d: coupled took %d iters vs scalar %d", j, br.Columns[j].Iterations, rs.Iterations)
		}
		var diff, norm float64
		for i := 0; i < n; i++ {
			d := x[j*n+i] - xs[i]
			diff += d * d
			norm += xs[i] * xs[i]
		}
		if math.Sqrt(diff) > 1e-6*math.Sqrt(norm) {
			t.Fatalf("col %d: coupled solution differs from scalar by %v (rel)", j, math.Sqrt(diff/norm))
		}
	}
}

// TestSolveBlockColumnCancel: a column whose context is already expired
// deflates out with StatusCancelled and a resumable checkpoint; the others
// converge normally — an expired deadline does not poison the batch.
func TestSolveBlockColumnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 500
	a := tridiag(n, -1, 2.5, -1)
	const k = 3
	b := make([]float64, n*k)
	for j := 0; j < k; j++ {
		copy(b[j*n:(j+1)*n], randVec(rng, n))
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, n*k)
	br := SolveBlock(a, x, b, k, NewJacobi(a), BlockOptions{
		Tol: 1e-8, MaxIter: 1000, Workers: 1, CancelCheckEvery: 1,
		ColumnCtx: []context.Context{nil, cancelled, nil},
	})
	if br.Columns[1].Status != StatusCancelled {
		t.Fatalf("cancelled column status: %v", br.Columns[1].Status)
	}
	if br.Columns[1].Checkpoint == nil {
		t.Fatalf("cancelled column carries no checkpoint")
	}
	if br.Columns[0].Status != StatusConverged || br.Columns[2].Status != StatusConverged {
		t.Fatalf("surviving columns: %v / %v", br.Columns[0].Status, br.Columns[2].Status)
	}
	if br.AllConverged {
		t.Fatalf("AllConverged must be false with a cancelled column")
	}
}

// TestSolveBlockBreakdown: an indefinite operator trips the per-column
// curvature guard (decoupled) and the Cholesky pivot guard (coupled), with
// warm checkpoints on every broken column.
func TestSolveBlockBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 200
	a := tridiag(n, -1, 0.5, -1) // indefinite
	const k = 2
	b := make([]float64, n*k)
	for j := 0; j < k; j++ {
		copy(b[j*n:(j+1)*n], randVec(rng, n))
	}
	for _, coupled := range []bool{false, true} {
		x := make([]float64, n*k)
		br := SolveBlock(a, x, b, k, nil, BlockOptions{Tol: 1e-10, MaxIter: 500, Workers: 1, Coupled: coupled})
		for j := 0; j < k; j++ {
			st := br.Columns[j].Status
			if st != StatusIndefinite && st != StatusNaNOrInf {
				t.Fatalf("coupled=%v col %d: status %v, want a breakdown", coupled, j, st)
			}
			if !st.Breakdown() {
				t.Fatalf("status %v not classified as breakdown", st)
			}
			if br.Columns[j].Checkpoint == nil {
				t.Fatalf("coupled=%v col %d: broken column carries no checkpoint", coupled, j)
			}
		}
	}
}

// TestSolveBlockZeroColumn: a zero right-hand side converges immediately
// with a zero solution, without occupying a slot in the active block.
func TestSolveBlockZeroColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 300
	a := tridiag(n, -1, 2.5, -1)
	const k = 2
	b := make([]float64, n*k)
	copy(b[n:], randVec(rng, n))
	x := make([]float64, n*k)
	br := SolveBlock(a, x, b, k, nil, BlockOptions{Tol: 1e-8, MaxIter: 500, Workers: 1})
	if !br.Columns[0].Converged || br.Columns[0].RelResidual != 0 || br.Columns[0].Iterations != 0 {
		t.Fatalf("zero column: %+v", br.Columns[0])
	}
	for i := 0; i < n; i++ {
		if x[i] != 0 {
			t.Fatalf("zero column solution x[%d]=%v", i, x[i])
		}
	}
	if !br.Columns[1].Converged {
		t.Fatalf("nonzero column did not converge: %+v", br.Columns[1])
	}
}

// TestSolveBlockGlobalCancel: cancelling the block context ends every
// remaining column with StatusCancelled and resumable checkpoints.
func TestSolveBlockGlobalCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 400
	a := tridiag(n, -1, 2.01, -1)
	const k = 2
	b := make([]float64, n*k)
	for j := 0; j < k; j++ {
		copy(b[j*n:(j+1)*n], randVec(rng, n))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, n*k)
	br := SolveBlock(a, x, b, k, nil, BlockOptions{
		Tol: 1e-12, MaxIter: 10000, Workers: 1, Ctx: ctx, CancelCheckEvery: 1,
	})
	for j := 0; j < k; j++ {
		if br.Columns[j].Status != StatusCancelled {
			t.Fatalf("col %d: %v", j, br.Columns[j].Status)
		}
		if br.Columns[j].Checkpoint == nil {
			t.Fatalf("col %d: no checkpoint", j)
		}
	}
}
