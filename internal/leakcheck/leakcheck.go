// Package leakcheck is a dependency-free goroutine-leak gate for test
// packages: wire it in as
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// and the package's tests fail when goroutines are still running after the
// last test finished. The observability layers of this repo (trace recorder
// subscriptions, SSE streams, the solve daemon, runtime-metrics samplers)
// all own background goroutines with explicit shutdown paths; this gate is
// what keeps "forgot to cancel the subscription" from shipping.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// retention is how long Main keeps re-checking before declaring a leak:
// goroutines that are *shutting down* (a closed SSE stream mid-return, an
// http connection draining) need a grace period, a genuinely parked
// goroutine never goes away.
const retention = 2 * time.Second

// benign returns whether a goroutine stack is expected to outlive the tests.
func benign(stack string) bool {
	for _, pat := range []string{
		// The test harness itself.
		"testing.Main(",
		"testing.(*M).",
		"testing.tRunner(",
		"runtime.goexit",
		"leakcheck.Main",
		// Runtime-owned service goroutines.
		"created by runtime",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"signal.loop",
		// The shared kernel worker pool parks its workers for the process
		// lifetime by design (internal/parallel); they are not a leak.
		"repro/internal/parallel.",
		// net/http keep-alive machinery: idle client connections linger
		// beyond the request that opened them and are reaped by the
		// transport, not by the test.
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
		"net/http.(*Transport).",
		"net/http.setRequestCancel",
	} {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

// leaked returns the non-benign goroutine stacks currently running.
func leaked() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, stack := range strings.Split(string(buf[:n]), "\n\n") {
		stack = strings.TrimSpace(stack)
		if stack == "" || benign(stack) {
			continue
		}
		out = append(out, stack)
	}
	return out
}

// Main runs the package's tests and then fails the binary if non-benign
// goroutines survive the retention grace period. It never returns.
func Main(m *testing.M) {
	code := m.Run()
	deadline := time.Now().Add(retention)
	var remaining []string
	for {
		remaining = leaked()
		if len(remaining) == 0 {
			os.Exit(code)
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running %s after the tests finished:\n\n%s\n",
		len(remaining), retention, strings.Join(remaining, "\n\n"))
	if code == 0 {
		code = 1
	}
	os.Exit(code)
}
