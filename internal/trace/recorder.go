package trace

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Trace is one finished end-to-end request: its identifiers, what produced
// it, and the full span tree. This is the document served by GET
// /traces/<trace-id> and appended to the JSONL export.
type Trace struct {
	TraceID string `json:"trace_id"`
	// SpanID is the id of the root span in Root (the server's own root; a
	// continued inbound trace parents it under ParentSpanID).
	SpanID string `json:"span_id"`
	// ParentSpanID is the inbound traceparent's span id when the client
	// started the trace; empty for traces originated server-side.
	ParentSpanID string `json:"parent_span_id,omitempty"`

	// JobID / Fingerprint / Name tie the trace back to the solve job, the
	// operator it ran on, and a human label.
	JobID       string `json:"job_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Name        string `json:"name,omitempty"`
	// Status is the job outcome the trace ended with (solver status, or
	// "rejected"/"failed" for jobs that never solved).
	Status string `json:"status,omitempty"`

	// Node names the process that recorded this span tree ("router", or a
	// shard's listen address). One distributed request is stitched from the
	// traces sharing a trace id across nodes: GET /traces/<id> on the
	// router shows the routing tree (which peer executed, failover hops),
	// and the same id on that peer shows the execution tree.
	Node string `json:"node,omitempty"`

	RecordedAt string `json:"recorded_at,omitempty"`

	// Root is the span tree (root span plus nested children).
	Root telemetry.SpanSnapshot `json:"root"`
}

// Summary is one entry of the GET /traces listing.
type Summary struct {
	TraceID     string `json:"trace_id"`
	JobID       string `json:"job_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Name        string `json:"name,omitempty"`
	Status      string `json:"status,omitempty"`
	RecordedAt  string `json:"recorded_at,omitempty"`
	DurationNS  int64  `json:"duration_ns"`
	Spans       int    `json:"spans"`
}

// Recorder retains the most recent finished traces in memory (bounded
// ring), fans them out to live subscribers (the /traces SSE stream), and
// optionally appends each one as a JSONL line for post-mortem analysis.
// All methods are safe for concurrent use; the zero value is not ready —
// use NewRecorder. A nil *Recorder is the valid "tracing export off" value:
// every method is a no-op.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	byID     map[string]*Trace
	order    []string // oldest first
	subs     map[chan *Trace]struct{}

	jsonlPath string
	reg       *telemetry.Registry
	node      string
}

// NewRecorder returns a recorder keeping at most capacity traces
// (capacity < 1 is treated as 1). jsonlPath, when non-empty, receives one
// JSON document per recorded trace, newline-delimited, appended atomically
// under the recorder lock. reg, when non-nil, receives the trace_* series.
func NewRecorder(capacity int, jsonlPath string, reg *telemetry.Registry) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	reg.SetHelp("trace_recorded", "finished request traces recorded")
	reg.SetHelp("trace_dropped", "recorded traces evicted from the in-memory ring")
	reg.SetHelp("trace_export_errors", "JSONL trace-export write failures")
	reg.SetHelp("trace_malformed_traceparent", "inbound traceparent headers rejected as malformed")
	return &Recorder{
		capacity:  capacity,
		byID:      map[string]*Trace{},
		subs:      map[chan *Trace]struct{}{},
		jsonlPath: jsonlPath,
		reg:       reg,
	}
}

// MalformedHeader counts one rejected inbound traceparent header. Nil-safe.
func (r *Recorder) MalformedHeader() {
	if r == nil {
		return
	}
	r.reg.Counter("trace.malformed_traceparent").Inc()
}

// SetNode names the process whose traces this recorder keeps; every
// subsequently recorded trace without its own Node is stamped with it. The
// solve daemon sets its listen address here once bound, the cluster router
// sets "router" — the stamp is what tells the two halves of one
// distributed trace apart. Nil-safe.
func (r *Recorder) SetNode(node string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.node = node
	r.mu.Unlock()
}

// Record stores a finished trace, notifies subscribers and appends the
// JSONL export line. Nil-safe (no-op on a nil recorder or nil trace).
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	if t.RecordedAt == "" {
		t.RecordedAt = time.Now().UTC().Format(time.RFC3339Nano)
	}
	r.mu.Lock()
	if t.Node == "" {
		t.Node = r.node
	}
	if _, ok := r.byID[t.TraceID]; !ok {
		r.order = append(r.order, t.TraceID)
	}
	r.byID[t.TraceID] = t
	for len(r.order) > r.capacity {
		delete(r.byID, r.order[0])
		r.order = r.order[1:]
		r.reg.Counter("trace.dropped").Inc()
	}
	var exportErr error
	if r.jsonlPath != "" {
		exportErr = appendJSONL(r.jsonlPath, t)
	}
	subs := make([]chan *Trace, 0, len(r.subs))
	for ch := range r.subs {
		subs = append(subs, ch)
	}
	r.mu.Unlock()

	r.reg.Counter("trace.recorded").Inc()
	if exportErr != nil {
		r.reg.Counter("trace.export_errors").Inc()
	}
	for _, ch := range subs {
		select {
		case ch <- t: // live stream is best-effort: a slow subscriber
		default: // misses traces rather than stalling the recorder
		}
	}
}

func appendJSONL(path string, t *Trace) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f) // Encode terminates each document with \n
	if err := enc.Encode(t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Get returns the full trace for a trace id.
func (r *Recorder) Get(traceID string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[traceID]
	return t, ok
}

// List returns summaries of the retained traces, most recent first.
func (r *Recorder) List() []Summary {
	if r == nil {
		return []Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		t := r.byID[r.order[i]]
		out = append(out, Summary{
			TraceID:     t.TraceID,
			JobID:       t.JobID,
			Fingerprint: t.Fingerprint,
			Name:        t.Name,
			Status:      t.Status,
			RecordedAt:  t.RecordedAt,
			DurationNS:  t.Root.NS,
			Spans:       countSpans(t.Root),
		})
	}
	return out
}

func countSpans(s telemetry.SpanSnapshot) int {
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}

// Len returns the number of retained traces.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Subscribe returns a channel of newly recorded traces and a cancel
// function. The channel is buffered; traces recorded while the buffer is
// full are skipped for that subscriber (the ring and JSONL export remain
// complete). Nil-safe: a nil recorder returns a never-firing channel.
func (r *Recorder) Subscribe() (<-chan *Trace, func()) {
	ch := make(chan *Trace, 16)
	if r == nil {
		return ch, func() {}
	}
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.subs, ch)
			r.mu.Unlock()
		})
	}
}
