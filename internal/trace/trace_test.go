package trace

import (
	"context"
	"strings"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/telemetry"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

func TestNewContextIsValidAndUnique(t *testing.T) {
	a, b := New(), New()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("fresh contexts must be valid: %+v %+v", a, b)
	}
	if a.TraceID == b.TraceID || a.SpanID == b.SpanID {
		t.Fatalf("two fresh contexts collided: %+v vs %+v", a, b)
	}
	if len(a.TraceID) != 32 || len(a.SpanID) != 16 {
		t.Fatalf("W3C sizes violated: trace %d span %d", len(a.TraceID), len(a.SpanID))
	}
}

func TestChildKeepsTraceFreshSpan(t *testing.T) {
	a := New()
	c := a.Child()
	if c.TraceID != a.TraceID {
		t.Fatalf("child changed trace id: %s vs %s", c.TraceID, a.TraceID)
	}
	if c.SpanID == a.SpanID {
		t.Fatal("child must get a fresh span id")
	}
	if !c.Valid() {
		t.Fatalf("child invalid: %+v", c)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	a := New()
	h := a.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("unexpected traceparent shape %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if got != a {
		t.Fatalf("round trip changed identifiers: %+v vs %+v", got, a)
	}
}

func TestParseTraceparentAcceptsSurroundingSpace(t *testing.T) {
	a := New()
	got, err := ParseTraceparent("  " + a.Traceparent() + " ")
	if err != nil || got != a {
		t.Fatalf("trimmed parse: got %+v err %v", got, err)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	a := New()
	h := "cc-" + a.TraceID + "-" + a.SpanID + "-01-extrafield"
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("future versions with extra fields must parse: %v", err)
	}
	if got != a {
		t.Fatalf("wrong identifiers from future version: %+v", got)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := New()
	cases := map[string]string{
		"empty":              "",
		"too few fields":     "00-abc",
		"bad version hex":    "zz-" + valid.TraceID + "-" + valid.SpanID + "-01",
		"forbidden ff":       "ff-" + valid.TraceID + "-" + valid.SpanID + "-01",
		"v00 extra field":    valid.Traceparent() + "-junk",
		"short trace id":     "00-abcd-" + valid.SpanID + "-01",
		"zero trace id":      "00-" + strings.Repeat("0", 32) + "-" + valid.SpanID + "-01",
		"zero span id":       "00-" + valid.TraceID + "-" + strings.Repeat("0", 16) + "-01",
		"uppercase trace id": "00-" + strings.ToUpper(valid.TraceID) + "-" + valid.SpanID + "-01",
		"bad flags":          "00-" + valid.TraceID + "-" + valid.SpanID + "-0x",
		"non-hex span id":    "00-" + valid.TraceID + "-ghijklmnopqrstuv-01",
		"whitespace-only":    "   ",
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: %q parsed without error", name, h)
		}
	}
}

func TestValidRejectsZeroAndBadHex(t *testing.T) {
	if (Context{}).Valid() {
		t.Fatal("zero context must be invalid")
	}
	bad := Context{TraceID: strings.Repeat("0", 32), SpanID: strings.Repeat("1", 16)}
	if bad.Valid() {
		t.Fatal("all-zero trace id must be invalid")
	}
}

func TestContextPlumbing(t *testing.T) {
	tc := New()
	tr := telemetry.NewTracer(nil)
	ctx := NewContext(context.Background(), tc, tr)

	got, ok := FromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("FromContext: got %+v ok=%v", got, ok)
	}
	if TracerFromContext(ctx) != tr {
		t.Fatal("TracerFromContext lost the tracer")
	}

	sp := StartSpan(ctx, "unit")
	sp.End()
	rep := tr.Report()
	if len(rep) != 1 || rep[0].Name != "unit" {
		t.Fatalf("StartSpan did not land on the carried tracer: %+v", rep)
	}
}

func TestContextPlumbingAbsent(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context must not yield trace identifiers")
	}
	if _, ok := FromContext(nil); ok { //nolint:staticcheck // nil-safety contract under test
		t.Fatal("nil context must not yield trace identifiers")
	}
	// No tracer carried: spans must be silent no-ops.
	sp := StartSpan(context.Background(), "noop")
	sp.SetAttr("k", "v")
	sp.End()
}

func TestShort(t *testing.T) {
	if got := Short("abcdef0123456789"); got != "abcdef01" {
		t.Fatalf("Short = %q", got)
	}
	if got := Short("ab"); got != "ab" {
		t.Fatalf("Short of short id = %q", got)
	}
}
