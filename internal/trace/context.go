package trace

import (
	"context"

	"repro/internal/telemetry"
)

// The context carries two things per request: the trace identifiers
// (Context) and the job-scoped span tracer. They travel together — every
// layer that already receives a context.Context (admission, cache, krylov)
// can open correctly-nested spans without new parameters.

type ctxKey int

const (
	ctxKeyContext ctxKey = iota
	ctxKeyTracer
)

// NewContext returns ctx carrying the trace identifiers and the job's span
// tracer. tr may be nil (identifiers only).
func NewContext(ctx context.Context, tc Context, tr *telemetry.Tracer) context.Context {
	ctx = context.WithValue(ctx, ctxKeyContext, tc)
	if tr != nil {
		ctx = context.WithValue(ctx, ctxKeyTracer, tr)
	}
	return ctx
}

// FromContext returns the trace identifiers carried by ctx, if any.
// Nil-safe: a nil ctx yields ok == false.
func FromContext(ctx context.Context) (Context, bool) {
	if ctx == nil {
		return Context{}, false
	}
	tc, ok := ctx.Value(ctxKeyContext).(Context)
	return tc, ok && tc.Valid()
}

// TracerFromContext returns the span tracer carried by ctx (nil if absent —
// which, by the telemetry package's nil-safety contract, is the valid
// "tracing off" tracer).
func TracerFromContext(ctx context.Context) *telemetry.Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKeyTracer).(*telemetry.Tracer)
	return tr
}

// StartSpan opens a named span on the tracer carried by ctx. When ctx
// carries no tracer this returns a nil span whose methods are no-ops, so
// instrumentation sites in the solver layers stay guard-free.
func StartSpan(ctx context.Context, name string) *telemetry.Span {
	return TracerFromContext(ctx).StartSpan(name)
}
