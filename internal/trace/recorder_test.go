package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func sampleTrace(i int) *Trace {
	return &Trace{
		TraceID: fmt.Sprintf("%032x", i+1),
		SpanID:  fmt.Sprintf("%016x", i+1),
		JobID:   fmt.Sprintf("j-%06d", i+1),
		Status:  "converged",
		Root: telemetry.SpanSnapshot{
			Name: "solve-request", NS: 1000,
			Children: []telemetry.SpanSnapshot{{Name: "cg-solve", NS: 900}},
		},
	}
}

func TestRecorderRingEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(2, "", reg)
	for i := 0; i < 3; i++ {
		r.Record(sampleTrace(i))
	}
	if r.Len() != 2 {
		t.Fatalf("ring kept %d traces, capacity 2", r.Len())
	}
	if _, ok := r.Get(sampleTrace(0).TraceID); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	if _, ok := r.Get(sampleTrace(2).TraceID); !ok {
		t.Fatal("newest trace missing")
	}
	list := r.List()
	if len(list) != 2 || list[0].TraceID != sampleTrace(2).TraceID {
		t.Fatalf("List not most-recent-first: %+v", list)
	}
	if list[0].Spans != 2 {
		t.Fatalf("span count = %d, want 2", list[0].Spans)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["trace.recorded"]; got != 3 {
		t.Fatalf("trace.recorded = %d, want 3", got)
	}
	if got := snap.Counters["trace.dropped"]; got != 1 {
		t.Fatalf("trace.dropped = %d, want 1", got)
	}
}

func TestRecorderJSONLExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	r := NewRecorder(8, path, telemetry.NewRegistry())
	for i := 0; i < 3; i++ {
		r.Record(sampleTrace(i))
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("export file: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		var tr Trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d not valid JSON: %v", n+1, err)
		}
		if tr.RecordedAt == "" {
			t.Fatalf("line %d missing recorded_at", n+1)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("JSONL has %d lines, want 3", n)
	}
}

func TestRecorderSubscribe(t *testing.T) {
	r := NewRecorder(8, "", telemetry.NewRegistry())
	ch, cancel := r.Subscribe()
	defer cancel()
	want := sampleTrace(0)
	r.Record(want)
	select {
	case got := <-ch:
		if got.TraceID != want.TraceID {
			t.Fatalf("subscriber got %s, want %s", got.TraceID, want.TraceID)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never notified")
	}
	cancel()
	r.Record(sampleTrace(1)) // must not panic or block after cancel
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(64, "", telemetry.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				r.Record(sampleTrace(g*16 + i))
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("kept %d traces, want 64", r.Len())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(sampleTrace(0))
	r.MalformedHeader()
	if r.Len() != 0 || len(r.List()) != 0 {
		t.Fatal("nil recorder must be empty")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder Get must miss")
	}
	ch, cancel := r.Subscribe()
	cancel()
	select {
	case <-ch:
		t.Fatal("nil recorder channel must never fire")
	default:
	}
}
