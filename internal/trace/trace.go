// Package trace is the request-scoped tracing layer of the solve service:
// W3C-traceparent-style trace/span identifiers, context plumbing that
// carries one job's identifiers and span tracer through every layer a solve
// crosses (HTTP handler, admission queue, preconditioner cache, FSAI setup,
// the CG loop), and a Recorder that retains finished span trees for the
// /traces endpoint and exports them as JSONL next to the run reports.
//
// The paper's headline metric is per-matrix time-to-solution; this package
// is what attributes that time per *request* once the reproduction runs as
// a daemon: every solve gets one connected span tree from client to CG, so
// "why was this solve slow" has an answer (queue wait vs cache miss vs
// setup phase vs iteration count) instead of a process-wide average. It is
// also the propagation groundwork for the sharded fleet (ROADMAP item 1):
// the identifiers follow the W3C traceparent wire format, so a forwarded
// solve keeps its trace across nodes.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Context identifies one position in a trace: the trace the request belongs
// to and the span representing the current operation. Identifiers are
// lower-case hex strings of the W3C Trace Context sizes (16-byte trace id,
// 8-byte span id). The zero value means "no trace".
type Context struct {
	// TraceID is the 32-hex-digit identifier shared by every span of one
	// end-to-end request.
	TraceID string `json:"trace_id"`
	// SpanID is the 16-hex-digit identifier of the current span.
	SpanID string `json:"span_id"`
}

// Valid reports whether both identifiers have the W3C sizes, are hex, and
// are not all-zero (the spec's invalid values).
func (c Context) Valid() bool {
	return validHexID(c.TraceID, 32) && validHexID(c.SpanID, 16)
}

// Traceparent renders the context in the W3C traceparent header format
// (version 00, sampled flag set): 00-<trace-id>-<span-id>-01.
func (c Context) Traceparent() string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// New returns a fresh context: a new trace with a new root span.
func New() Context {
	return Context{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Child returns a context in the same trace with a fresh span id — the
// identifier a server assigns to its own root span when continuing an
// inbound trace.
func (c Context) Child() Context {
	return Context{TraceID: c.TraceID, SpanID: NewSpanID()}
}

// NewTraceID returns a random 16-byte trace id as 32 hex digits.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a random 8-byte span id as 16 hex digits.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	// crypto/rand.Read never fails on the supported platforms; a broken
	// entropy source would already have broken TLS. Fall back to a fixed
	// non-zero pattern rather than panicking in an observability path.
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

func validHexID(s string, width int) bool {
	if len(s) != width {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-spanid-flags). Unknown versions are accepted as long as
// the first four fields have the version-00 shape, per the spec's
// forward-compatibility rule; malformed values are rejected with an error
// describing the first violated constraint. The empty string is malformed —
// callers should check for header absence first.
func ParseTraceparent(h string) (Context, error) {
	h = strings.TrimSpace(h)
	if h == "" {
		return Context{}, fmt.Errorf("traceparent: empty header")
	}
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return Context{}, fmt.Errorf("traceparent: %d fields, want at least 4", len(parts))
	}
	ver, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) {
		return Context{}, fmt.Errorf("traceparent: bad version %q", ver)
	}
	if ver == "ff" {
		return Context{}, fmt.Errorf("traceparent: forbidden version ff")
	}
	if ver == "00" && len(parts) != 4 {
		return Context{}, fmt.Errorf("traceparent: version 00 has %d fields, want 4", len(parts))
	}
	if !validHexID(traceID, 32) {
		return Context{}, fmt.Errorf("traceparent: bad trace id %q", traceID)
	}
	if !validHexID(spanID, 16) {
		return Context{}, fmt.Errorf("traceparent: bad parent span id %q", spanID)
	}
	if len(flags) != 2 || !isHex(flags) {
		return Context{}, fmt.Errorf("traceparent: bad flags %q", flags)
	}
	return Context{TraceID: traceID, SpanID: spanID}, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// Short returns the first 8 digits of an identifier for compact log lines.
func Short(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}
