package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// VersionInfo is the GET /version document: what binary this process runs.
// The cluster router probes it during rolling upgrades to verify a shard
// speaks the same module before routing traffic to it.
type VersionInfo struct {
	// Module is the main module path ("repro"); Version its module version
	// ("(devel)" for local builds).
	Module  string `json:"module"`
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision / Modified are the VCS stamp when the build carried one.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

var (
	versionOnce sync.Once
	versionInfo VersionInfo
)

// Version returns this process's build info, computed once via
// runtime/debug.ReadBuildInfo. Binaries built without module support (unit
// tests under some configurations) still report the Go version.
func Version() VersionInfo {
	versionOnce.Do(func() {
		versionInfo = VersionInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		versionInfo.Module = bi.Main.Path
		versionInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				versionInfo.Revision = s.Value
			case "vcs.modified":
				versionInfo.Modified = s.Value == "true"
			}
		}
	})
	return versionInfo
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Version())
}

// handleCluster serves the router's topology document when this server
// fronts a cluster (Options.Cluster); plain shards answer 404 — the route
// exists only where a fleet does.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.opt.Cluster == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opt.Cluster.Topology())
}
