package obs

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: the SSE streams, watcher
// subscriptions and trace recorders under test all own background
// goroutines with explicit shutdown paths.
func TestMain(m *testing.M) { leakcheck.Main(m) }
