package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("fsai.setups").Add(3)
	reg.Gauge("solver.relres").Set(1e-9)
	reg.Histogram("krylov.iter.spmv_ns", telemetry.ExpBuckets(100, 10, 4)).Observe(250)

	srv := httptest.NewServer(NewServer(Options{Registry: reg}).Handler())
	defer srv.Close()

	code, hdr, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE fsai_setups counter",
		"# HELP fsai_setups",
		"fsai_setups 3",
		"# TYPE solver_relres gauge",
		"# TYPE krylov_iter_spmv_ns histogram",
		`krylov_iter_spmv_ns_bucket{le="+Inf"} 1`,
		"krylov_iter_spmv_ns_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestServerMetricsNilRegistry(t *testing.T) {
	srv := httptest.NewServer(NewServer(Options{}).Handler())
	defer srv.Close()
	code, _, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Errorf("nil registry: status %d body %q", code, body)
	}
}

func TestServerSolveSnapshot(t *testing.T) {
	w := NewSolveWatcher()
	w.Begin("lap/FSAI", 1e-8, 100)
	w.Progress(7, 1e-3)
	srv := httptest.NewServer(NewServer(Options{Watcher: w}).Handler())
	defer srv.Close()

	code, hdr, body := get(t, srv.URL+"/debug/solve")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var st SolveState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if !st.Active || st.Iteration != 7 || st.RelRes != 1e-3 || st.Label != "lap/FSAI" {
		t.Errorf("snapshot: %+v", st)
	}
}

func TestServerSolveSnapshotNilWatcher(t *testing.T) {
	srv := httptest.NewServer(NewServer(Options{}).Handler())
	defer srv.Close()
	code, _, body := get(t, srv.URL+"/debug/solve")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var st SolveState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Active || st.Done {
		t.Errorf("nil watcher should report idle state: %+v", st)
	}
}

// TestServerSSEPerIteration is the acceptance check: the SSE stream on
// /debug/solve must deliver at least one event per CG iteration of a live
// solve, plus the terminal done event, and then end.
func TestServerSSEPerIteration(t *testing.T) {
	// Small matrix: the iteration count stays within the 64-update
	// subscriber buffer, so no event can be dropped.
	m := matgen.Laplace2D(6, 6)
	b := make([]float64, m.Rows)
	for i := range b {
		b[i] = 1
	}

	w := NewSolveWatcher()
	srv := httptest.NewServer(NewServer(Options{Watcher: w}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/solve?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type sseResult struct {
		states []SolveState
		err    error
	}
	done := make(chan sseResult, 1)
	go func() {
		var res sseResult
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var st SolveState
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				res.err = err
				break
			}
			res.states = append(res.states, st)
		}
		done <- res
	}()

	// Wait until the SSE handler has registered its subscription, so the
	// solve cannot start publishing before the client is listening.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		n := len(w.subs)
		w.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	w.Begin("lap2d-6x6/jacobi", 1e-8, 200)
	x := make([]float64, m.Rows)
	opt := krylov.DefaultOptions()
	opt.Tol = 1e-8
	opt.MaxIter = 200
	opt.ProgressDetail = w.ProgressDetail
	res := krylov.Solve(m, x, b, krylov.NewJacobi(m), opt)
	w.End(res)

	var got sseResult
	select {
	case got = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate after the solve finished")
	}
	if got.err != nil {
		t.Fatalf("stream decode: %v", got.err)
	}
	if !res.Converged || res.Iterations == 0 {
		t.Fatalf("test solve did not converge: %+v", res)
	}
	iterSeen := map[int]bool{}
	var doneEvents int
	for _, st := range got.states {
		if st.Active {
			iterSeen[st.Iteration] = true
		}
		if st.Done {
			doneEvents++
		}
	}
	for it := 1; it <= res.Iterations; it++ {
		if !iterSeen[it] {
			t.Errorf("no SSE event for iteration %d (of %d)", it, res.Iterations)
		}
	}
	if len(got.states) < res.Iterations+1 {
		t.Errorf("got %d SSE events for a %d-iteration solve", len(got.states), res.Iterations)
	}
	if doneEvents == 0 {
		t.Error("no terminal done event on the stream")
	}
}

func TestServerPprofWired(t *testing.T) {
	srv := httptest.NewServer(NewServer(Options{}).Handler())
	defer srv.Close()
	code, _, body := get(t, srv.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline: status %d body %q", code, body)
	}
	code, _, body = get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}

func TestServerRuns(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "run1.json"), []byte(`{"schema":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(Options{RunsDir: dir}).Handler())
	defer srv.Close()

	code, _, body := get(t, srv.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var runs []runInfo
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Name != "run1.json" {
		t.Errorf("listing: %+v", runs)
	}

	code, _, body = get(t, srv.URL+"/runs/run1.json")
	if code != http.StatusOK || body != `{"schema":2}` {
		t.Errorf("fetch: status %d body %q", code, body)
	}

	for _, bad := range []string{"/runs/../server.go", "/runs/notes.txt", "/runs/none.json"} {
		if code, _, _ := get(t, srv.URL+bad); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", bad, code)
		}
	}
}

func TestServerRunsNoDir(t *testing.T) {
	srv := httptest.NewServer(NewServer(Options{}).Handler())
	defer srv.Close()
	code, _, body := get(t, srv.URL+"/runs")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("no runs dir: status %d body %q", code, body)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(Options{Registry: telemetry.NewRegistry()})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := get(t, "http://"+addr.String()+"/metrics")
	if code != http.StatusOK {
		t.Errorf("status %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestServerConcurrentScrapeDuringSolve exercises the satellite-3 scenario
// under the race detector: a solve publishes per-iteration progress and
// telemetry while two HTTP clients concurrently scrape /metrics and
// /debug/solve.
func TestServerConcurrentScrapeDuringSolve(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := NewSolveWatcher()
	srv := httptest.NewServer(NewServer(Options{Registry: reg, Watcher: w}).Handler())
	defer srv.Close()

	m := matgen.Laplace2D(16, 16)
	b := make([]float64, m.Rows)
	for i := range b {
		b[i] = 1
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	wg.Add(2)
	go scrape("/metrics")
	go scrape("/debug/solve")

	for round := 0; round < 3; round++ {
		w.Begin("race", 1e-8, 1000)
		x := make([]float64, m.Rows)
		opt := krylov.DefaultOptions()
		opt.MaxIter = 1000
		opt.CollectTiming = true
		opt.Metrics = reg
		opt.Progress = w.Progress
		opt.ProgressDetail = w.ProgressDetail
		res := krylov.Solve(m, x, b, krylov.NewJacobi(m), opt)
		w.End(res)
		if !res.Converged {
			t.Fatalf("round %d: solve did not converge: %+v", round, res)
		}
	}
	close(stop)
	wg.Wait()

	if st := w.State(); !st.Done {
		t.Errorf("final state not done: %+v", st)
	}
}

// TestServerShutdownDrainsSSE is the graceful-shutdown contract: Shutdown
// must end an attached /debug/solve SSE stream (which would otherwise live
// until its client disconnected) and return once the handlers drained.
func TestServerShutdownDrainsSSE(t *testing.T) {
	w := NewSolveWatcher()
	s := NewServer(Options{Watcher: w, Heartbeat: 10 * time.Millisecond})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr.String() + "/debug/solve?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait for the first heartbeat so the handler is provably inside its
	// stream loop before shutdown begins.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first heartbeat: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Shutdown did not return; SSE stream stalled the drain")
	}

	// The stream must have been ended by the server.
	if _, err := io.Copy(io.Discard, br); err != nil && !strings.Contains(err.Error(), "EOF") {
		// Any termination (clean EOF or reset) is fine; a hang is not, and
		// io.Copy returning at all proves the stream ended.
		t.Logf("stream ended with: %v", err)
	}

	// Shutdown is idempotent and safe on the already-stopped server.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestServerShutdownNeverStarted covers the embedded-Handler case: Shutdown
// on a server that only ever served through Handler() must not panic and
// must still fire the stream-ending signal.
func TestServerShutdownNeverStarted(t *testing.T) {
	s := NewServer(Options{Watcher: NewSolveWatcher(), Heartbeat: 10 * time.Millisecond})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/debug/solve?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("first heartbeat: %v", err)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	streamDone := make(chan struct{})
	go func() { io.Copy(io.Discard, br); close(streamDone) }()
	select {
	case <-streamDone:
	case <-time.After(4 * time.Second):
		t.Fatal("quit signal did not end the embedded SSE stream")
	}
}
