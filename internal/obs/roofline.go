// Live roofline telemetry: per-solve achieved GB/s and GFLOP/s per kernel
// class laid against the machine's roofs, with a per-matrix rolling
// bandwidth baseline that flags silently degraded solves. This is the
// paper's Fig.-4 placement computed continuously from production solves
// instead of once from the offline model.
package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/roofline"
	"repro/internal/telemetry"
)

// rooflineBaselineAlpha is the EWMA weight of the newest observation in the
// per-matrix bandwidth baseline.
const rooflineBaselineAlpha = 0.3

// RooflineLowBandwidthFraction is the flag threshold: a solve whose SpMV
// achieved bandwidth lands below this fraction of the matrix's rolling
// baseline is flagged (">30% below baseline").
const RooflineLowBandwidthFraction = 0.7

// rooflineMinObservations is how many prior solves a matrix needs before
// the baseline is trusted enough to flag.
const rooflineMinObservations = 3

// RooflineSolve is the recorded roofline placement of one solve.
type RooflineSolve struct {
	JobID       string              `json:"job_id,omitempty"`
	Fingerprint string              `json:"fingerprint"`
	Machine     string              `json:"machine"`
	Iterations  int                 `json:"iterations"`
	Kernels     []roofline.Achieved `json:"kernels"`
	// BaselineBandwidthBytes is the matrix's rolling SpMV bandwidth
	// baseline *before* this solve was folded in (0 until established).
	BaselineBandwidthBytes float64 `json:"baseline_bandwidth_bytes,omitempty"`
	// LowBandwidth marks a solve whose SpMV bandwidth fell more than 30%
	// below the baseline.
	LowBandwidth bool      `json:"low_bandwidth,omitempty"`
	Time         time.Time `json:"time"`
}

// rooflineSeries is the per-fingerprint rolling state.
type rooflineSeries struct {
	fp           string
	observations int64
	baselineBW   float64 // EWMA of spmv achieved bandwidth
	flagged      int64
	latest       RooflineSolve
}

// RooflineMonitor aggregates per-solve roofline estimates: it exports the
// roofline_* gauges, keeps a per-matrix rolling bandwidth baseline, and
// serves the /roofline summary. A nil monitor no-ops everywhere.
type RooflineMonitor struct {
	mu      sync.Mutex
	machine arch.Arch
	reg     *telemetry.Registry
	series  map[string]*rooflineSeries
	clock   func() time.Time
}

// NewRooflineMonitor builds a monitor for the given machine model. reg,
// when non-nil, receives the roofline_* series.
func NewRooflineMonitor(machine arch.Arch, reg *telemetry.Registry) *RooflineMonitor {
	reg.SetHelp("roofline_achieved_bandwidth_bytes", "achieved memory bandwidth of the last solve, B/s by kernel class and matrix fingerprint")
	reg.SetHelp("roofline_achieved_flops", "achieved flop rate of the last solve, flop/s by kernel class and matrix fingerprint")
	reg.SetHelp("roofline_pct_of_attainable", "achieved flops of the last solve as percent of the kernel's roofline bound")
	reg.SetHelp("roofline_baseline_bandwidth_bytes", "per-matrix rolling EWMA of SpMV achieved bandwidth, B/s")
	reg.SetHelp("roofline_low_bandwidth_solves", "solves whose SpMV bandwidth fell >30% below the matrix's rolling baseline")
	return &RooflineMonitor{
		machine: machine,
		reg:     reg,
		series:  map[string]*rooflineSeries{},
		clock:   time.Now,
	}
}

// Machine returns the machine model the monitor prices against (zero Arch
// for nil).
func (m *RooflineMonitor) Machine() arch.Arch {
	if m == nil {
		return arch.Arch{}
	}
	return m.machine
}

// shortFP shortens a fingerprint for label values, matching the SLO
// monitor's display convention.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Observe records one finished solve's roofline estimate and returns the
// enriched record (baseline, low-bandwidth flag). Nil-safe: a nil monitor
// returns the input wrapped unflagged.
func (m *RooflineMonitor) Observe(jobID, fp string, iters int, est []roofline.Achieved) RooflineSolve {
	rs := RooflineSolve{JobID: jobID, Fingerprint: fp, Iterations: iters, Kernels: est}
	if m == nil {
		return rs
	}
	rs.Machine = m.machine.Name
	m.mu.Lock()
	defer m.mu.Unlock()
	rs.Time = m.clock()

	var spmvBW float64
	for _, e := range est {
		if e.Kernel == roofline.KernelSpMV {
			spmvBW = e.AchievedBandwidthBytes
		}
	}

	sr := m.series[fp]
	if sr == nil {
		sr = &rooflineSeries{fp: fp}
		m.series[fp] = sr
	}
	rs.BaselineBandwidthBytes = sr.baselineBW
	if spmvBW > 0 && sr.observations >= rooflineMinObservations &&
		spmvBW < RooflineLowBandwidthFraction*sr.baselineBW {
		rs.LowBandwidth = true
		sr.flagged++
	}
	if spmvBW > 0 {
		// Fold into the EWMA after flagging, so a single slow solve is
		// judged against the history, not against itself. A persistent
		// regression does shift the baseline over time — the flag catches
		// the onset, the baseline then tracks the new normal.
		if sr.observations == 0 {
			sr.baselineBW = spmvBW
		} else {
			sr.baselineBW = rooflineBaselineAlpha*spmvBW + (1-rooflineBaselineAlpha)*sr.baselineBW
		}
		sr.observations++
	}
	sr.latest = rs

	if m.reg != nil {
		lfp := shortFP(fp)
		for _, e := range est {
			lbl := `{kernel="` + e.Kernel + `",fp="` + lfp + `"}`
			m.reg.Gauge("roofline.achieved_bandwidth_bytes" + lbl).Set(e.AchievedBandwidthBytes)
			m.reg.Gauge("roofline.achieved_flops" + lbl).Set(e.AchievedFlops)
			m.reg.Gauge("roofline.pct_of_attainable" + lbl).Set(e.PctOfAttainable)
		}
		m.reg.Gauge(`roofline.baseline_bandwidth_bytes{fp="` + lfp + `"}`).Set(sr.baselineBW)
		if rs.LowBandwidth {
			m.reg.Counter(`roofline.low_bandwidth_solves{fp="` + lfp + `"}`).Inc()
		}
	}
	return rs
}

// RooflineMatrixState is the /roofline per-matrix summary.
type RooflineMatrixState struct {
	Fingerprint            string        `json:"fingerprint"`
	Observations           int64         `json:"observations"`
	BaselineBandwidthBytes float64       `json:"baseline_bandwidth_bytes"`
	LowBandwidthSolves     int64         `json:"low_bandwidth_solves"`
	Latest                 RooflineSolve `json:"latest"`
}

// RooflineReport is the GET /roofline payload.
type RooflineReport struct {
	Machine struct {
		Name           string  `json:"name"`
		PeakFlops      float64 `json:"peak_flops"`
		BandwidthBytes float64 `json:"bandwidth_bytes"`
		RidgeAI        float64 `json:"ridge_ai"`
	} `json:"machine"`
	FlagThresholdFraction float64               `json:"flag_threshold_fraction"`
	Matrices              []RooflineMatrixState `json:"matrices"`
}

// Report summarizes the monitor state. Nil-safe (empty report).
func (m *RooflineMonitor) Report() RooflineReport {
	var rep RooflineReport
	rep.FlagThresholdFraction = RooflineLowBandwidthFraction
	rep.Matrices = []RooflineMatrixState{}
	if m == nil {
		return rep
	}
	rep.Machine.Name = m.machine.Name
	rep.Machine.PeakFlops = roofline.PeakFlops(m.machine)
	rep.Machine.BandwidthBytes = m.machine.MemBandwidth
	if m.machine.MemBandwidth > 0 {
		rep.Machine.RidgeAI = roofline.PeakFlops(m.machine) / m.machine.MemBandwidth
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sr := range m.series {
		rep.Matrices = append(rep.Matrices, RooflineMatrixState{
			Fingerprint:            sr.fp,
			Observations:           sr.observations,
			BaselineBandwidthBytes: sr.baselineBW,
			LowBandwidthSolves:     sr.flagged,
			Latest:                 sr.latest,
		})
	}
	sort.Slice(rep.Matrices, func(i, j int) bool {
		return rep.Matrices[i].Fingerprint < rep.Matrices[j].Fingerprint
	})
	return rep
}
