package obs

import (
	"math"
	"sync"
	"time"

	"repro/internal/krylov"
)

// SolveState is the live state of a PCG solve as served on /debug/solve.
// One JSON document per update; Seq increases with every published change so
// stream consumers can detect gaps.
type SolveState struct {
	// Active is true between Begin (or the first progress callback) and End.
	Active bool `json:"active"`
	// Done is true once End has been called for the current solve.
	Done bool `json:"done"`
	// Label names the solve (matrix/variant), when the caller provided one.
	Label string `json:"label,omitempty"`

	Iteration int     `json:"iteration"`
	MaxIter   int     `json:"max_iter,omitempty"`
	RelRes    float64 `json:"relres"`
	Tol       float64 `json:"tol,omitempty"`
	Converged bool    `json:"converged"`

	// Status is the typed krylov termination status: empty while the
	// outcome is still open, then "converged", "max-iter",
	// "indefinite-curvature", "nan-or-inf", "stagnation" or "cancelled"
	// (terminal breakdowns are published even mid-stream, so a watcher
	// never sees a solve silently vanish).
	Status string `json:"status,omitempty"`

	// ElapsedNS is wall time since Begin; ItersPerSec the observed rate.
	ElapsedNS   int64   `json:"elapsed_ns"`
	ItersPerSec float64 `json:"iters_per_sec,omitempty"`

	// ETAIterations/ETANS extrapolate the remaining work log-linearly from
	// the observed convergence rate (CG residuals decay geometrically to
	// first order): iterations-to-tolerance ≈ k·log(tol)/log(relres_k).
	// Zero when no estimate is possible (diverging, done, or first iter).
	ETAIterations int   `json:"eta_iterations,omitempty"`
	ETANS         int64 `json:"eta_ns,omitempty"`

	// Running kernel-class timing breakdown (populated when the solver
	// collects timing).
	SpMVNS    int64 `json:"spmv_ns,omitempty"`
	PrecondNS int64 `json:"precond_ns,omitempty"`
	BLAS1NS   int64 `json:"blas1_ns,omitempty"`

	// Seq increments on every published update.
	Seq uint64 `json:"seq"`
}

// SolveWatcher turns the krylov progress callbacks into a live, subscribable
// solve state. Wire it into a solve with:
//
//	w.Begin("matrix/variant", opt.Tol, opt.MaxIter)
//	opt.ProgressDetail = w.ProgressDetail   // or opt.Progress = w.Progress
//	res := krylov.Solve(a, x, b, m, opt)
//	w.End(res)
//
// Begin/End are optional: progress callbacks on an idle watcher auto-begin
// an unlabelled solve, so campaign drivers can wire only ProgressDetail.
// All methods are nil-safe and safe for concurrent use with State and
// Subscribe.
type SolveWatcher struct {
	mu    sync.Mutex
	state SolveState
	start time.Time
	subs  map[chan SolveState]struct{}
	now   func() time.Time // test hook
}

// NewSolveWatcher returns an idle watcher.
func NewSolveWatcher() *SolveWatcher {
	return &SolveWatcher{subs: map[chan SolveState]struct{}{}, now: time.Now}
}

// Begin marks the start of a solve. Resets any previous solve's state.
func (w *SolveWatcher) Begin(label string, tol float64, maxIter int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.state.Seq
	w.state = SolveState{Active: true, Label: label, Tol: tol, MaxIter: maxIter, RelRes: 1, Seq: seq}
	w.start = w.now()
	w.publishLocked()
}

// Progress is a krylov.Options.Progress-compatible callback.
func (w *SolveWatcher) Progress(iter int, relres float64) {
	if w == nil {
		return
	}
	w.ProgressDetail(krylov.ProgressInfo{Iteration: iter, RelRes: relres})
}

// ProgressDetail is a krylov.Options.ProgressDetail-compatible callback.
func (w *SolveWatcher) ProgressDetail(info krylov.ProgressInfo) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.state.Active || w.state.Done {
		// Auto-begin: a campaign driver wired only the progress hook.
		seq := w.state.Seq
		label := w.state.Label
		w.state = SolveState{Active: true, Label: label, RelRes: 1, Seq: seq}
		w.start = w.now()
	}
	s := &w.state
	s.Iteration = info.Iteration
	s.RelRes = info.RelRes
	s.Converged = info.Converged
	if info.Status != krylov.StatusUnknown {
		s.Status = info.Status.String()
	}
	s.SpMVNS = info.Timing.SpMV.Nanoseconds()
	s.PrecondNS = info.Timing.Precond.Nanoseconds()
	s.BLAS1NS = info.Timing.BLAS1.Nanoseconds()
	elapsed := w.now().Sub(w.start)
	s.ElapsedNS = elapsed.Nanoseconds()
	if elapsed > 0 {
		s.ItersPerSec = float64(s.Iteration) / elapsed.Seconds()
	}
	s.ETAIterations, s.ETANS = etaOf(s)
	w.publishLocked()
}

// etaOf extrapolates remaining iterations and wall time log-linearly.
func etaOf(s *SolveState) (int, int64) {
	if s.Converged || s.Iteration <= 0 || s.Tol <= 0 ||
		s.RelRes <= 0 || s.RelRes >= 1 || s.RelRes <= s.Tol {
		return 0, 0
	}
	need := float64(s.Iteration) * math.Log(s.Tol) / math.Log(s.RelRes)
	// The epsilon keeps an exact integer estimate from ceiling one up when
	// the log ratio lands a few ulps above it.
	iters := int(math.Ceil(need-1e-9)) - s.Iteration
	if iters < 0 {
		iters = 0
	}
	if s.MaxIter > 0 && s.Iteration+iters > s.MaxIter {
		iters = s.MaxIter - s.Iteration
	}
	var ns int64
	if s.ItersPerSec > 0 {
		ns = int64(float64(iters) / s.ItersPerSec * 1e9)
	}
	return iters, ns
}

// End marks the current solve finished with its result.
func (w *SolveWatcher) End(res krylov.Result) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := &w.state
	s.Active = false
	s.Done = true
	s.Iteration = res.Iterations
	s.RelRes = res.RelResidual
	s.Converged = res.Converged
	if res.Status != krylov.StatusUnknown {
		s.Status = res.Status.String()
	}
	s.ETAIterations, s.ETANS = 0, 0
	if t := res.Timing; t != (krylov.Timing{}) {
		s.SpMVNS = t.SpMV.Nanoseconds()
		s.PrecondNS = t.Precond.Nanoseconds()
		s.BLAS1NS = t.BLAS1.Nanoseconds()
	}
	if !w.start.IsZero() {
		s.ElapsedNS = w.now().Sub(w.start).Nanoseconds()
	}
	w.publishLocked()
}

// State returns the current solve state (zero value for a nil watcher).
func (w *SolveWatcher) State() SolveState {
	if w == nil {
		return SolveState{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// Subscribe returns a channel of state updates and a cancel function. The
// current state is delivered first. Slow subscribers never block the solver:
// when a subscriber's buffer is full the oldest pending update is dropped so
// the latest state always gets through.
func (w *SolveWatcher) Subscribe() (<-chan SolveState, func()) {
	if w == nil {
		ch := make(chan SolveState)
		close(ch)
		return ch, func() {}
	}
	ch := make(chan SolveState, 64)
	w.mu.Lock()
	w.subs[ch] = struct{}{}
	ch <- w.state // buffered, cannot block
	w.mu.Unlock()
	cancel := func() {
		w.mu.Lock()
		if _, ok := w.subs[ch]; ok {
			delete(w.subs, ch)
			close(ch)
		}
		w.mu.Unlock()
	}
	return ch, cancel
}

// publishLocked bumps Seq and fans the state out to subscribers. Caller
// holds w.mu.
func (w *SolveWatcher) publishLocked() {
	w.state.Seq++
	for ch := range w.subs {
		select {
		case ch <- w.state:
		default:
			// Buffer full: drop the oldest update, keep the newest.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- w.state:
			default:
			}
		}
	}
}
