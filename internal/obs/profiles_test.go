package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/prof"
	"repro/internal/roofline"
	"repro/internal/telemetry"
)

// TestProfilesEndpointNilSampler: a server mounted without a sampler must
// still answer /profiles with valid JSON (enabled=false), never 5xx.
func TestProfilesEndpointNilSampler(t *testing.T) {
	srv := NewServer(Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	code, _, body := get(t, hs.URL+"/profiles")
	if code != 200 {
		t.Fatalf("/profiles without sampler: status %d", code)
	}
	var idx struct {
		Enabled bool              `json:"enabled"`
		Windows []json.RawMessage `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if idx.Enabled || len(idx.Windows) != 0 {
		t.Fatalf("expected disabled empty index, got %s", body)
	}
	if code, _, _ := get(t, hs.URL+"/profiles/1"); code != 404 {
		t.Fatalf("/profiles/1 without sampler: status %d, want 404", code)
	}
}

// TestProfilesEndpointServesWindows: index, per-window detail with summary,
// raw profile downloads, and 404s for missing windows and unknown kinds.
func TestProfilesEndpointServesWindows(t *testing.T) {
	sampler := prof.NewSampler(prof.Options{Capacity: 4})
	srv := NewServer(Options{Profiles: sampler})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	w := sampler.Capture(30 * time.Millisecond)
	if w == nil || w.ID == 0 {
		t.Fatalf("capture: %+v", w)
	}

	code, _, body := get(t, hs.URL+"/profiles")
	if code != 200 {
		t.Fatalf("/profiles: status %d", code)
	}
	var idx struct {
		Enabled bool `json:"enabled"`
		Windows []struct {
			ID uint64 `json:"id"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatalf("bad index JSON: %v", err)
	}
	if !idx.Enabled || len(idx.Windows) != 1 || idx.Windows[0].ID != w.ID {
		t.Fatalf("index: %s", body)
	}

	code, _, body = get(t, hs.URL+"/profiles/1")
	if code != 200 {
		t.Fatalf("/profiles/1: status %d", code)
	}
	var detail struct {
		Window struct {
			ID uint64 `json:"id"`
		} `json:"window"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("bad detail JSON: %v", err)
	}
	if detail.Window.ID != w.ID {
		t.Fatalf("detail window id = %d, want %d", detail.Window.ID, w.ID)
	}

	for _, kind := range []string{"cpu", "heap", "goroutine"} {
		code, hdr, raw := get(t, hs.URL+"/profiles/1/"+kind)
		if code != 200 {
			t.Fatalf("/profiles/1/%s: status %d", kind, code)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("/profiles/1/%s content-type %q", kind, ct)
		}
		if _, err := prof.Parse([]byte(raw)); err != nil {
			t.Fatalf("/profiles/1/%s does not parse: %v", kind, err)
		}
	}

	for _, path := range []string{"/profiles/99", "/profiles/1/bogus", "/profiles/notanumber"} {
		if code, _, _ := get(t, hs.URL+path); code != 404 {
			t.Fatalf("%s: status %d, want 404", path, code)
		}
	}
}

// TestRooflineEndpoint: machine roofs and per-matrix state as JSON.
func TestRooflineEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	mon := NewRooflineMonitor(arch.Skylake(), reg)
	srv := NewServer(Options{Registry: reg, Roofline: mon})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	mon.Observe("j-000001", "cafe0123456789ab", 10, []roofline.Achieved{{
		Kernel:                 roofline.KernelSpMV,
		Flops:                  2e9,
		Bytes:                  16e9,
		Seconds:                0.1,
		AchievedFlops:          2e10,
		AchievedBandwidthBytes: 1.6e11,
	}})

	code, _, body := get(t, hs.URL+"/roofline")
	if code != 200 {
		t.Fatalf("/roofline: status %d", code)
	}
	var rep RooflineReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Machine.Name != "Skylake" || rep.Machine.BandwidthBytes != 256e9 {
		t.Fatalf("machine: %+v", rep.Machine)
	}
	if len(rep.Matrices) != 1 || rep.Matrices[0].Latest.JobID != "j-000001" {
		t.Fatalf("matrices: %+v", rep.Matrices)
	}

	// An unconfigured monitor still answers valid JSON, never 5xx.
	bare := NewServer(Options{})
	hb := httptest.NewServer(bare.Handler())
	defer hb.Close()
	code, _, body = get(t, hb.URL+"/roofline")
	if code != 200 {
		t.Fatalf("/roofline without monitor: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
}

// TestRooflineLowBandwidthFlagging: the rolling baseline flags a solve >30%
// below it only after enough observations, and the flag counter increments.
func TestRooflineLowBandwidthFlagging(t *testing.T) {
	reg := telemetry.NewRegistry()
	mon := NewRooflineMonitor(arch.Skylake(), reg)
	est := func(bw float64) []roofline.Achieved {
		return []roofline.Achieved{{
			Kernel:                 roofline.KernelSpMV,
			AchievedFlops:          bw / 8,
			AchievedBandwidthBytes: bw,
		}}
	}
	for i := 0; i < 3; i++ {
		rs := mon.Observe("", "fp1", 10, est(100e9))
		if rs.LowBandwidth {
			t.Fatalf("solve %d flagged before baseline established", i)
		}
	}
	// 50 GB/s against a ~100 GB/s baseline: well past the 30% threshold.
	rs := mon.Observe("", "fp1", 10, est(50e9))
	if !rs.LowBandwidth {
		t.Fatalf("slow solve not flagged: %+v", rs)
	}
	// A healthy solve right after is not flagged (baseline folded the slow
	// one in, but 100 vs ~85 EWMA is above 70%).
	rs = mon.Observe("", "fp1", 10, est(100e9))
	if rs.LowBandwidth {
		t.Fatalf("healthy solve flagged: %+v", rs)
	}
	rep := mon.Report()
	if len(rep.Matrices) != 1 || rep.Matrices[0].LowBandwidthSolves != 1 {
		t.Fatalf("report: %+v", rep.Matrices)
	}
}
