// HTTP surface of the continuous profiler (internal/prof): a JSON index of
// captured windows, per-window top-N summaries with per-job/per-phase CPU
// attribution, and raw .pb.gz downloads for `go tool pprof`.
package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/prof"
)

// profilesIndex is the GET /profiles payload.
type profilesIndex struct {
	Enabled     bool           `json:"enabled"`
	WindowNS    int64          `json:"window_ns,omitempty"`
	GapNS       int64          `json:"gap_ns,omitempty"`
	Capacity    int            `json:"capacity,omitempty"`
	OverheadPct float64        `json:"overhead_pct"`
	Windows     []*prof.Window `json:"windows"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	idx := profilesIndex{Windows: []*prof.Window{}}
	if sp := s.opt.Profiles; sp != nil {
		idx.Enabled = true
		o := sp.Opts()
		idx.WindowNS = int64(o.Window)
		idx.GapNS = int64(o.Gap)
		idx.Capacity = o.Capacity
		idx.OverheadPct = sp.MeasuredOverheadPct()
		idx.Windows = sp.Windows()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(idx)
}

// profileDetail is the GET /profiles/<id> payload.
type profileDetail struct {
	Window  *prof.Window  `json:"window"`
	Summary *prof.Summary `json:"summary,omitempty"`
	// SummaryError explains a missing summary (e.g. the window's CPU
	// capture was skipped).
	SummaryError string `json:"summary_error,omitempty"`
}

// handleProfileByID serves /profiles/<id> (JSON summary) and
// /profiles/<id>/{cpu,heap,goroutine,mutex} (raw gzipped pprof protos).
func (s *Server) handleProfileByID(w http.ResponseWriter, r *http.Request) {
	sp := s.opt.Profiles
	if sp == nil {
		http.NotFound(w, r)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/profiles/")
	idStr, kind, _ := strings.Cut(rest, "/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	win := sp.Window(id)
	if win == nil {
		http.NotFound(w, r)
		return
	}
	if kind != "" {
		var raw []byte
		switch kind {
		case "cpu":
			raw = win.CPU
		case "heap":
			raw = win.Heap
		case "goroutine":
			raw = win.Goroutine
		case "mutex":
			raw = win.Mutex
		default:
			http.NotFound(w, r)
			return
		}
		if len(raw) == 0 {
			http.Error(w, fmt.Sprintf("window %d has no %s profile", id, kind), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="window-%d-%s.pb.gz"`, id, kind))
		_, _ = w.Write(raw)
		return
	}
	det := profileDetail{Window: win}
	if sum, err := sp.Summary(win); err != nil {
		det.SummaryError = err.Error()
	} else {
		det.Summary = &sum
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(det)
}

// handleRoofline serves the live roofline summary.
func (s *Server) handleRoofline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opt.Roofline.Report())
}
