package obs

import (
	"testing"
	"time"

	"repro/internal/krylov"
)

func TestWatcherNilSafe(t *testing.T) {
	var w *SolveWatcher
	w.Begin("x", 1e-8, 100)
	w.Progress(1, 0.5)
	w.ProgressDetail(krylov.ProgressInfo{Iteration: 2, RelRes: 0.25})
	w.End(krylov.Result{})
	if st := w.State(); st != (SolveState{}) {
		t.Errorf("nil watcher state = %+v, want zero", st)
	}
	ch, cancel := w.Subscribe()
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil watcher subscription should be closed")
	}
}

func TestWatcherLifecycle(t *testing.T) {
	w := NewSolveWatcher()
	if st := w.State(); st.Active || st.Done {
		t.Fatalf("fresh watcher not idle: %+v", st)
	}
	w.Begin("lap/FSAI", 1e-8, 500)
	st := w.State()
	if !st.Active || st.Done || st.Label != "lap/FSAI" || st.Tol != 1e-8 || st.MaxIter != 500 || st.RelRes != 1 {
		t.Fatalf("post-Begin state: %+v", st)
	}
	w.Progress(1, 1e-2)
	w.Progress(2, 1e-4)
	st = w.State()
	if st.Iteration != 2 || st.RelRes != 1e-4 {
		t.Fatalf("post-progress state: %+v", st)
	}
	// Convergence is geometric at 1e-2/iter; tol 1e-8 needs 4 iterations
	// total, so the log-linear extrapolation says 2 more.
	if st.ETAIterations != 2 {
		t.Errorf("ETAIterations = %d, want 2", st.ETAIterations)
	}
	if st.ElapsedNS <= 0 {
		t.Errorf("ElapsedNS = %d, want > 0", st.ElapsedNS)
	}
	w.End(krylov.Result{Iterations: 4, Converged: true, RelResidual: 5e-9,
		Timing: krylov.Timing{SpMV: 3 * time.Millisecond, Precond: 2 * time.Millisecond, BLAS1: time.Millisecond}})
	st = w.State()
	if st.Active || !st.Done || !st.Converged || st.Iteration != 4 || st.RelRes != 5e-9 {
		t.Fatalf("post-End state: %+v", st)
	}
	if st.ETAIterations != 0 || st.ETANS != 0 {
		t.Errorf("finished solve still has ETA: %+v", st)
	}
	if st.SpMVNS != 3e6 || st.PrecondNS != 2e6 || st.BLAS1NS != 1e6 {
		t.Errorf("timing breakdown: %+v", st)
	}
}

func TestWatcherAutoBegin(t *testing.T) {
	// Campaign drivers wire only the progress hook; the watcher must
	// activate itself, and a new solve after End must reset Done.
	w := NewSolveWatcher()
	w.ProgressDetail(krylov.ProgressInfo{Iteration: 1, RelRes: 0.5})
	st := w.State()
	if !st.Active || st.Done || st.Iteration != 1 {
		t.Fatalf("auto-begin state: %+v", st)
	}
	w.End(krylov.Result{Iterations: 1, RelResidual: 0.5})
	w.ProgressDetail(krylov.ProgressInfo{Iteration: 1, RelRes: 0.9})
	st = w.State()
	if !st.Active || st.Done || st.RelRes != 0.9 {
		t.Fatalf("re-begin after End: %+v", st)
	}
}

func TestWatcherETAClampedToMaxIter(t *testing.T) {
	w := NewSolveWatcher()
	w.Begin("slow", 1e-8, 10)
	w.Progress(5, 0.99) // would extrapolate to thousands of iterations
	st := w.State()
	if st.ETAIterations != 5 {
		t.Errorf("ETAIterations = %d, want clamp to MaxIter-Iteration = 5", st.ETAIterations)
	}
}

func TestWatcherETAUndefinedCases(t *testing.T) {
	w := NewSolveWatcher()
	w.Begin("div", 1e-8, 100)
	for _, rel := range []float64{1.5, 1.0, 0} { // diverged, stalled at 1, exact zero
		w.Progress(3, rel)
		if st := w.State(); st.ETAIterations != 0 || st.ETANS != 0 {
			t.Errorf("relres=%g: ETA = (%d, %d), want zero", rel, st.ETAIterations, st.ETANS)
		}
	}
}

func TestWatcherSubscribe(t *testing.T) {
	w := NewSolveWatcher()
	ch, cancel := w.Subscribe()
	defer cancel()
	first := <-ch
	if first.Active || first.Seq != 0 {
		t.Fatalf("initial snapshot: %+v", first)
	}
	w.Begin("sub", 1e-8, 10)
	w.Progress(1, 0.5)
	w.End(krylov.Result{Iterations: 1, RelResidual: 0.5})
	var got []SolveState
	for len(got) < 3 {
		got = append(got, <-ch)
	}
	if !got[0].Active || got[1].Iteration != 1 || !got[2].Done {
		t.Fatalf("update sequence: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Errorf("Seq not increasing: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	cancel()
	cancel() // double-cancel is safe
	if _, ok := <-ch; ok {
		// Drain whatever was buffered before close.
		for range ch {
		}
	}
}

func TestWatcherSlowSubscriberKeepsLatest(t *testing.T) {
	w := NewSolveWatcher()
	ch, cancel := w.Subscribe()
	defer cancel()
	w.Begin("burst", 1e-8, 1000)
	for i := 1; i <= 500; i++ { // far beyond the 64-entry buffer
		w.Progress(i, 1.0/float64(i+1))
	}
	var last SolveState
	for {
		select {
		case st := <-ch:
			last = st
			continue
		default:
		}
		break
	}
	if last.Iteration != 500 {
		t.Errorf("latest update lost under overflow: got iteration %d, want 500", last.Iteration)
	}
}
