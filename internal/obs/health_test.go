package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/krylov"
)

func getHealth(t *testing.T, srv *Server) (int, Health) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, _, body := get(t, ts.URL+"/healthz")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	return code, h
}

func TestHealthzIdle(t *testing.T) {
	srv := NewServer(Options{Watcher: NewSolveWatcher()})
	code, h := getHealth(t, srv)
	if code != 200 || h.Status != HealthOK {
		t.Fatalf("idle healthz: %d %+v", code, h)
	}
}

func TestHealthzNilWatcher(t *testing.T) {
	srv := NewServer(Options{})
	code, h := getHealth(t, srv)
	if code != 200 || h.Status != HealthOK {
		t.Fatalf("nil-watcher healthz: %d %+v", code, h)
	}
}

func TestHealthzDerivedFromWatcher(t *testing.T) {
	w := NewSolveWatcher()
	srv := NewServer(Options{Watcher: w})

	w.Begin("m1", 1e-8, 100)
	w.End(krylov.Result{Iterations: 12, Converged: true, Status: krylov.StatusConverged, RelResidual: 1e-9})
	code, h := getHealth(t, srv)
	if code != 200 || h.Status != HealthOK || h.Solve != "converged" {
		t.Fatalf("converged healthz: %d %+v", code, h)
	}

	w.Begin("m2", 1e-8, 100)
	w.End(krylov.Result{Iterations: 7, Status: krylov.StatusNaNOrInf, RelResidual: 3})
	code, h = getHealth(t, srv)
	if code != 503 || h.Status != HealthFailing || h.Solve != "nan-or-inf" {
		t.Fatalf("breakdown healthz: %d %+v", code, h)
	}

	w.Begin("m3", 1e-8, 100)
	w.End(krylov.Result{Iterations: 9, Status: krylov.StatusCancelled, RelResidual: 0.5})
	code, h = getHealth(t, srv)
	if code != 200 || h.Status != HealthDegraded {
		t.Fatalf("cancelled healthz: %d %+v", code, h)
	}
}

func TestHealthzOverride(t *testing.T) {
	w := NewSolveWatcher()
	srv := NewServer(Options{Watcher: w})
	srv.SetHealth(HealthDegraded, "recovered via fallback to jacobi")
	code, h := getHealth(t, srv)
	if code != 200 || h.Status != HealthDegraded || h.Reason == "" {
		t.Fatalf("override healthz: %d %+v", code, h)
	}
	srv.SetHealth(HealthFailing, "solve exhausted recovery chain")
	if code, h = getHealth(t, srv); code != 503 || h.Status != HealthFailing {
		t.Fatalf("failing healthz: %d %+v", code, h)
	}
	srv.SetHealth("", "")
	if code, h = getHealth(t, srv); code != 200 || h.Status != HealthOK {
		t.Fatalf("cleared healthz: %d %+v", code, h)
	}
}

func TestWatcherPublishesStatus(t *testing.T) {
	w := NewSolveWatcher()
	w.Begin("m", 1e-8, 100)
	w.ProgressDetail(krylov.ProgressInfo{Iteration: 1, RelRes: 0.5})
	if st := w.State(); st.Status != "" {
		t.Fatalf("mid-flight status should be empty, got %q", st.Status)
	}
	// A terminal breakdown snapshot carries its status even before End.
	w.ProgressDetail(krylov.ProgressInfo{Iteration: 2, RelRes: 0.6, Status: krylov.StatusIndefinite})
	if st := w.State(); st.Status != "indefinite-curvature" {
		t.Fatalf("terminal snapshot status %q", st.Status)
	}
	w.End(krylov.Result{Iterations: 2, Status: krylov.StatusIndefinite, RelResidual: 0.6})
	if st := w.State(); st.Status != "indefinite-curvature" || !st.Done {
		t.Fatalf("end status %q done=%v", st.Status, st.Done)
	}
}
