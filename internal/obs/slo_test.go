package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fixedClock is an injectable, manually advanced time source.
type fixedClock struct{ now time.Time }

func (c *fixedClock) Now() time.Time          { return c.now }
func (c *fixedClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFixedClock() *fixedClock              { return &fixedClock{now: time.Unix(1_700_000_000, 0)} }

func newTestMonitor(obj SLOObjectives) (*SLOMonitor, *fixedClock, *telemetry.Registry) {
	reg := telemetry.NewRegistry()
	m := NewSLOMonitor(obj, reg)
	clk := newFixedClock()
	m.SetClock(clk.Now)
	return m, clk, reg
}

func TestSLOObjectiveDefaults(t *testing.T) {
	m, _, _ := newTestMonitor(SLOObjectives{})
	obj := m.Objectives()
	if obj.Target != 0.95 || obj.Window != 10*time.Minute || obj.MinEvents != 10 {
		t.Fatalf("defaults not applied: %+v", obj)
	}
	if obj.WarmSolveP95 <= 0 || obj.ColdSolveP95 <= obj.WarmSolveP95 {
		t.Fatalf("cold objective should exceed warm: %+v", obj)
	}
}

func TestSLOBurnRateAndBudget(t *testing.T) {
	m, _, _ := newTestMonitor(SLOObjectives{
		WarmSolveP95: time.Millisecond,
		Target:       0.9, // allowed breach fraction: 0.1
		MinEvents:    2,
	})
	// 8 good, 2 bad out of 10 → breach fraction exactly the allowed 0.1:
	// burn rate 1.0, budget fully spent.
	for i := 0; i < 8; i++ {
		m.ObserveSolve("fpA", true, int64(500*time.Microsecond), 0)
	}
	for i := 0; i < 2; i++ {
		m.ObserveSolve("fpA", true, int64(5*time.Millisecond), 0)
	}
	st, ok := m.State("fpA", SLOWarmSolve)
	if !ok {
		t.Fatal("series missing")
	}
	if st.WindowEvents != 10 || st.WindowBreaches != 2 {
		t.Fatalf("window counts = %d/%d, want 10/2", st.WindowEvents, st.WindowBreaches)
	}
	if st.BurnRate < 1.999 || st.BurnRate > 2.001 {
		t.Fatalf("burn rate = %g, want 2.0 (0.2 breach over 0.1 allowed)", st.BurnRate)
	}
	if st.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %g, want 0", st.BudgetRemaining)
	}
	if !st.Exhausted {
		t.Fatal("series should be exhausted (remaining 0, enough events)")
	}
	if st.P95NS <= 0 {
		t.Fatal("p95 missing from histogram")
	}
}

func TestSLOWindowSlidesBreachesOut(t *testing.T) {
	m, clk, _ := newTestMonitor(SLOObjectives{
		WarmSolveP95: time.Millisecond,
		Window:       time.Minute,
		MinEvents:    1,
	})
	m.ObserveSolve("fp", true, int64(time.Second), 0) // breach
	if st, _ := m.State("fp", SLOWarmSolve); !st.Exhausted {
		t.Fatalf("expected exhaustion right after the breach: %+v", st)
	}
	clk.Advance(2 * time.Minute) // breach falls out of the window
	m.ObserveSolve("fp", true, int64(100*time.Microsecond), 0)
	st, _ := m.State("fp", SLOWarmSolve)
	if st.WindowEvents != 1 || st.WindowBreaches != 0 {
		t.Fatalf("window did not slide: %+v", st)
	}
	if st.Exhausted || st.BudgetRemaining != 1 {
		t.Fatalf("budget should be fully restored: %+v", st)
	}
	if st.TotalEvents != 2 || st.TotalBreaches != 1 {
		t.Fatalf("lifetime totals wrong: %+v", st)
	}
}

func TestSLOWarmColdAndQueueSeries(t *testing.T) {
	m, _, _ := newTestMonitor(SLOObjectives{MinEvents: 1})
	m.ObserveSolve("fp", true, int64(time.Millisecond), int64(time.Millisecond))
	m.ObserveSolve("fp", false, int64(time.Second), int64(2*time.Millisecond))
	rep := m.Report()
	kinds := map[string]bool{}
	for _, s := range rep.Series {
		kinds[s.SLO] = true
	}
	for _, want := range []string{SLOWarmSolve, SLOColdSolve, SLOQueueWait} {
		if !kinds[want] {
			t.Fatalf("report missing %q series: %+v", want, rep.Series)
		}
	}
	q, ok := m.State("fp", SLOQueueWait)
	if !ok || q.WindowEvents != 2 {
		t.Fatalf("queue series should see both jobs: %+v", q)
	}
}

func TestSLOMinEventsGatesExhaustion(t *testing.T) {
	m, _, _ := newTestMonitor(SLOObjectives{WarmSolveP95: time.Millisecond, MinEvents: 5})
	m.ObserveSolve("fp", true, int64(time.Second), 0) // one slow solve on a fresh daemon
	if st, _ := m.State("fp", SLOWarmSolve); st.Exhausted {
		t.Fatal("one breach below MinEvents must not exhaust the budget")
	}
	if got := m.Exhausted(); len(got) != 0 {
		t.Fatalf("Exhausted() = %v, want empty", got)
	}
}

func TestSLOIterationAnomalies(t *testing.T) {
	m, _, reg := newTestMonitor(SLOObjectives{})
	m.RecordIterationAnomaly("fp")
	m.RecordIterationAnomaly("fp")
	rep := m.Report()
	if rep.IterationAnomalies["fp"] != 2 {
		t.Fatalf("anomaly count = %d, want 2", rep.IterationAnomalies["fp"])
	}
	snap := reg.Snapshot()
	if snap.Counters[`slo.iteration_anomalies{fp="fp"}`] != 2 {
		t.Fatalf("anomaly counter missing: %+v", snap.Counters)
	}
}

func TestNilSLOMonitorIsSafe(t *testing.T) {
	var m *SLOMonitor
	m.ObserveSolve("fp", true, 1, 1)
	m.RecordIterationAnomaly("fp")
	m.SetClock(time.Now)
	if got := m.Exhausted(); got != nil {
		t.Fatalf("nil Exhausted = %v", got)
	}
	rep := m.Report()
	if len(rep.Series) != 0 {
		t.Fatalf("nil Report has series: %+v", rep)
	}
}

func TestSLOEndpointServesReport(t *testing.T) {
	m, _, _ := newTestMonitor(SLOObjectives{MinEvents: 1})
	m.ObserveSolve("fp", false, int64(time.Millisecond), 0)
	srv := NewServer(Options{SLO: m})
	defer srv.Shutdown(t.Context())

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("/slo status %d", rr.Code)
	}
	var rep SLOReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/slo not JSON: %v", err)
	}
	if rep.Target != 0.95 || len(rep.Series) == 0 {
		t.Fatalf("unexpected /slo document: %+v", rep)
	}
}

func TestSLOPrometheusSeriesHaveHelpAndType(t *testing.T) {
	m, _, reg := newTestMonitor(SLOObjectives{WarmSolveP95: time.Millisecond, MinEvents: 1})
	m.ObserveSolve("fp", true, int64(time.Second), int64(time.Millisecond))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{"slo_latency_ns", "slo_events", "slo_breaches", "slo_burn_rate", "slo_budget_remaining"} {
		if !strings.Contains(text, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}
	if !strings.Contains(text, `slo_burn_rate{fp="fp",slo="warm_solve"}`) {
		t.Errorf("burn-rate gauge with labels missing from exposition:\n%s", text)
	}
}

// TestSLOBudgetExhaustionDegradesHealth is the induced-breach acceptance
// check: latency breaches past the error budget flip /healthz to degraded,
// and recovery restores ok.
func TestSLOBudgetExhaustionDegradesHealth(t *testing.T) {
	m, clk, _ := newTestMonitor(SLOObjectives{
		WarmSolveP95: time.Millisecond,
		Window:       time.Minute,
		MinEvents:    2,
	})
	srv := NewServer(Options{SLO: m})
	defer srv.Shutdown(t.Context())

	if h := srv.HealthState(); h.Status != HealthOK {
		t.Fatalf("fresh server health = %s, want ok", h.Status)
	}
	// Induce the breach: every warm solve blows the 1ms objective.
	for i := 0; i < 3; i++ {
		m.ObserveSolve("fp", true, int64(50*time.Millisecond), 0)
	}
	h := srv.HealthState()
	if h.Status != HealthDegraded {
		t.Fatalf("health after budget exhaustion = %s, want degraded", h.Status)
	}
	if !strings.Contains(h.Reason, "SLO error budget exhausted") ||
		!strings.Contains(h.Reason, SLOWarmSolve) {
		t.Fatalf("reason does not name the series: %q", h.Reason)
	}

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 { // degraded serves 200 (alive), only failing is 503
		t.Fatalf("/healthz status %d", rr.Code)
	}
	var doc Health
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if doc.Status != HealthDegraded {
		t.Fatalf("/healthz body status = %q, want degraded", doc.Status)
	}

	// Breaches age out of the window → budget restored → ok again.
	clk.Advance(2 * time.Minute)
	for i := 0; i < 3; i++ {
		m.ObserveSolve("fp", true, int64(100*time.Microsecond), 0)
	}
	if h := srv.HealthState(); h.Status != HealthOK {
		t.Fatalf("health after recovery = %s, want ok", h.Status)
	}
}
