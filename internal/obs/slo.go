package obs

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SLO kinds: which latency a series tracks. Warm and cold solves get
// separate objectives because the paper's whole cost model says they are
// different workloads — a cold solve pays the dominant FSAI(E) setup phase,
// a warm (cache-hit) solve is pure iteration time.
const (
	SLOWarmSolve = "warm_solve"
	SLOColdSolve = "cold_solve"
	SLOQueueWait = "queue_wait"
)

// SLOObjectives configures the monitor. The zero value gets
// production-shaped defaults from normalize.
type SLOObjectives struct {
	// WarmSolveP95 / ColdSolveP95 are the per-fingerprint latency
	// objectives for warm (cache-hit) and cold (setup-paying) solves;
	// QueueWaitP95 bounds admission wait. An event is "good" when its
	// latency is at or under the objective.
	WarmSolveP95 time.Duration
	ColdSolveP95 time.Duration
	QueueWaitP95 time.Duration

	// Target is the fraction of events that must meet the objective
	// (default 0.95). The error budget of a window is the (1-Target)
	// fraction of its events.
	Target float64

	// Window is the sliding window over which burn rate and budget are
	// computed (default 10 minutes).
	Window time.Duration

	// MinEvents is the number of window events a series needs before its
	// budget verdict can flip health (default 10) — one slow solve on a
	// fresh daemon is not an incident.
	MinEvents int
}

func (o *SLOObjectives) normalize() {
	if o.WarmSolveP95 <= 0 {
		o.WarmSolveP95 = 2 * time.Second
	}
	if o.ColdSolveP95 <= 0 {
		o.ColdSolveP95 = 30 * time.Second
	}
	if o.QueueWaitP95 <= 0 {
		o.QueueWaitP95 = 5 * time.Second
	}
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = 0.95
	}
	if o.Window <= 0 {
		o.Window = 10 * time.Minute
	}
	if o.MinEvents <= 0 {
		o.MinEvents = 10
	}
}

// sloEvent is one observed latency inside the sliding window.
type sloEvent struct {
	at  time.Time
	bad bool
}

// sloSeries tracks one (fingerprint, kind) pair: the window events plus the
// full-history latency histogram (telemetry.Histogram provides the p95).
type sloSeries struct {
	fp, kind    string
	objectiveNS int64
	events      []sloEvent
	hist        *telemetry.Histogram
	breachTotal int64
	eventTotal  int64
}

// SLOMonitor tracks per-fingerprint latency objectives over a sliding
// window: each observed job contributes one event per applicable series,
// and the monitor answers with p95s (bucket-interpolated from
// telemetry.Histogram), burn rates and remaining error budget. A nil
// monitor is the valid "SLOs off" value — every method no-ops.
type SLOMonitor struct {
	mu     sync.Mutex
	obj    SLOObjectives
	series map[string]*sloSeries
	anom   map[string]int64 // fingerprint → iteration anomalies
	reg    *telemetry.Registry
	clock  func() time.Time
}

// NewSLOMonitor builds a monitor with the given objectives (zero fields
// defaulted). reg, when non-nil, receives the slo_* series.
func NewSLOMonitor(obj SLOObjectives, reg *telemetry.Registry) *SLOMonitor {
	obj.normalize()
	reg.SetHelp("slo_latency_ns", "observed latency by matrix fingerprint and SLO kind")
	reg.SetHelp("slo_events", "SLO-tracked events by fingerprint and kind")
	reg.SetHelp("slo_breaches", "events that missed their latency objective")
	reg.SetHelp("slo_burn_rate", "window breach fraction over allowed fraction (1.0 = burning exactly the budget)")
	reg.SetHelp("slo_budget_remaining", "fraction of the window error budget left (0 = exhausted)")
	reg.SetHelp("slo_iteration_anomalies", "warm solves whose CG iteration count drifted above the cached baseline")
	return &SLOMonitor{
		obj:    obj,
		series: map[string]*sloSeries{},
		anom:   map[string]int64{},
		reg:    reg,
		clock:  time.Now,
	}
}

// SetClock replaces the monitor's time source (tests). Nil-safe.
func (m *SLOMonitor) SetClock(clock func() time.Time) {
	if m == nil || clock == nil {
		return
	}
	m.mu.Lock()
	m.clock = clock
	m.mu.Unlock()
}

// Objectives returns the normalized objective set the monitor runs with.
func (m *SLOMonitor) Objectives() SLOObjectives {
	if m == nil {
		return SLOObjectives{}
	}
	return m.obj
}

// ObserveSolve records one finished solve for fingerprint fp: warm selects
// the warm- vs cold-solve objective for solveNS, and queueWaitNS (when > 0
// or the queue objective is armed) lands in the queue-wait series.
// Nil-safe.
func (m *SLOMonitor) ObserveSolve(fp string, warm bool, solveNS, queueWaitNS int64) {
	if m == nil {
		return
	}
	kind, objective := SLOColdSolve, m.obj.ColdSolveP95
	if warm {
		kind, objective = SLOWarmSolve, m.obj.WarmSolveP95
	}
	m.observe(fp, kind, objective, solveNS)
	m.observe(fp, SLOQueueWait, m.obj.QueueWaitP95, queueWaitNS)
}

// RecordIterationAnomaly counts one warm-solve iteration drift for fp.
// Nil-safe.
func (m *SLOMonitor) RecordIterationAnomaly(fp string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.anom[fp]++
	m.mu.Unlock()
	m.reg.Counter(`slo.iteration_anomalies{fp="` + fp + `"}`).Inc()
}

func (m *SLOMonitor) observe(fp, kind string, objective time.Duration, ns int64) {
	m.mu.Lock()
	key := fp + "|" + kind
	s, ok := m.series[key]
	if !ok {
		s = &sloSeries{
			fp: fp, kind: kind, objectiveNS: objective.Nanoseconds(),
			hist: m.reg.Histogram(`slo.latency_ns{fp="`+fp+`",slo="`+kind+`"}`,
				telemetry.ExpBuckets(1e5, 4, 14)),
		}
		m.series[key] = s
	}
	now := m.clock()
	bad := ns > s.objectiveNS
	s.events = append(s.events, sloEvent{at: now, bad: bad})
	s.prune(now.Add(-m.obj.Window))
	s.eventTotal++
	if bad {
		s.breachTotal++
	}
	m.mu.Unlock()

	s.hist.Observe(float64(ns))
	m.reg.Counter(`slo.events{fp="` + fp + `",slo="` + kind + `"}`).Inc()
	if bad {
		m.reg.Counter(`slo.breaches{fp="` + fp + `",slo="` + kind + `"}`).Inc()
	}
	m.publishGauges(fp, kind)
}

// prune drops events older than cutoff (events are appended in time order).
func (s *sloSeries) prune(cutoff time.Time) {
	i := 0
	for i < len(s.events) && s.events[i].at.Before(cutoff) {
		i++
	}
	if i > 0 {
		s.events = append(s.events[:0], s.events[i:]...)
	}
}

// windowCounts returns (events, breaches) inside the current window.
func (s *sloSeries) windowCounts() (int, int) {
	n, bad := len(s.events), 0
	for _, e := range s.events {
		if e.bad {
			bad++
		}
	}
	return n, bad
}

// burnAndBudget derives the burn rate and remaining budget fraction for a
// window of n events with bad breaches under target. Burn rate 1.0 means
// breaching at exactly the allowed rate; remaining 0 means the window's
// budget is spent.
func burnAndBudget(n, bad int, target float64) (burn, remaining float64) {
	if n == 0 {
		return 0, 1
	}
	allowedFrac := 1 - target
	badFrac := float64(bad) / float64(n)
	burn = badFrac / allowedFrac
	remaining = 1 - burn
	if remaining < 0 {
		remaining = 0
	}
	return burn, remaining
}

func (m *SLOMonitor) publishGauges(fp, kind string) {
	m.mu.Lock()
	s, ok := m.series[fp+"|"+kind]
	if !ok {
		m.mu.Unlock()
		return
	}
	s.prune(m.clock().Add(-m.obj.Window))
	n, bad := s.windowCounts()
	target := m.obj.Target
	m.mu.Unlock()
	burn, remaining := burnAndBudget(n, bad, target)
	lbl := `{fp="` + fp + `",slo="` + kind + `"}`
	m.reg.Gauge("slo.burn_rate" + lbl).Set(burn)
	m.reg.Gauge("slo.budget_remaining" + lbl).Set(remaining)
}

// SLOSeriesState is one series of the GET /slo document.
type SLOSeriesState struct {
	Fingerprint string `json:"fingerprint"`
	SLO         string `json:"slo"`
	ObjectiveNS int64  `json:"objective_ns"`
	// P95NS is the bucket-interpolated p95 of every observation (full
	// history, not just the window) from the telemetry histogram.
	P95NS float64 `json:"p95_ns"`
	// WindowEvents/WindowBreaches count inside the sliding window;
	// TotalEvents/TotalBreaches since process start.
	WindowEvents   int   `json:"window_events"`
	WindowBreaches int   `json:"window_breaches"`
	TotalEvents    int64 `json:"total_events"`
	TotalBreaches  int64 `json:"total_breaches"`
	// BurnRate is windowed breach fraction / allowed fraction; 1.0 burns
	// the budget exactly. BudgetRemaining is 1 - BurnRate clamped at 0.
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// Exhausted marks a series whose window spent its whole error budget
	// with at least MinEvents observations — the condition that degrades
	// /healthz.
	Exhausted bool `json:"exhausted"`
}

// SLOReport is the GET /slo document.
type SLOReport struct {
	Target    float64          `json:"target"`
	WindowS   float64          `json:"window_s"`
	MinEvents int              `json:"min_events"`
	Series    []SLOSeriesState `json:"series"`
	// IterationAnomalies counts warm-solve iteration drifts per
	// fingerprint (the silent-degradation detector).
	IterationAnomalies map[string]int64 `json:"iteration_anomalies,omitempty"`
}

// Report snapshots every tracked series. Nil-safe (empty report).
func (m *SLOMonitor) Report() SLOReport {
	if m == nil {
		return SLOReport{Series: []SLOSeriesState{}}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := SLOReport{
		Target:    m.obj.Target,
		WindowS:   m.obj.Window.Seconds(),
		MinEvents: m.obj.MinEvents,
		Series:    []SLOSeriesState{},
	}
	cutoff := m.clock().Add(-m.obj.Window)
	for _, s := range m.series {
		rep.Series = append(rep.Series, m.stateLocked(s, cutoff))
	}
	if len(m.anom) > 0 {
		rep.IterationAnomalies = make(map[string]int64, len(m.anom))
		for fp, n := range m.anom {
			rep.IterationAnomalies[fp] = n
		}
	}
	return rep
}

// State returns the current state of one (fingerprint, kind) series.
func (m *SLOMonitor) State(fp, kind string) (SLOSeriesState, bool) {
	if m == nil {
		return SLOSeriesState{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[fp+"|"+kind]
	if !ok {
		return SLOSeriesState{}, false
	}
	return m.stateLocked(s, m.clock().Add(-m.obj.Window)), true
}

func (m *SLOMonitor) stateLocked(s *sloSeries, cutoff time.Time) SLOSeriesState {
	s.prune(cutoff)
	n, bad := s.windowCounts()
	burn, remaining := burnAndBudget(n, bad, m.obj.Target)
	return SLOSeriesState{
		Fingerprint:     s.fp,
		SLO:             s.kind,
		ObjectiveNS:     s.objectiveNS,
		P95NS:           s.hist.Quantile(0.95),
		WindowEvents:    n,
		WindowBreaches:  bad,
		TotalEvents:     s.eventTotal,
		TotalBreaches:   s.breachTotal,
		BurnRate:        burn,
		BudgetRemaining: remaining,
		Exhausted:       remaining <= 0 && n >= m.obj.MinEvents,
	}
}

// Exhausted lists the series whose error budget is spent (short
// "fingerprint/kind" labels, for the /healthz reason). Nil-safe.
func (m *SLOMonitor) Exhausted() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.clock().Add(-m.obj.Window)
	var out []string
	for _, s := range m.series {
		st := m.stateLocked(s, cutoff)
		if st.Exhausted {
			fp := s.fp
			if len(fp) > 12 {
				fp = fp[:12]
			}
			out = append(out, fp+"/"+s.kind)
		}
	}
	return out
}
