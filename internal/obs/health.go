package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"repro/internal/krylov"
)

// Health status values served on /healthz.
const (
	HealthOK       = "ok"       // no trouble observed
	HealthDegraded = "degraded" // converged, but recovery was needed
	HealthFailing  = "failing"  // the last solve ended without convergence
)

// Health is the GET /healthz document.
type Health struct {
	// Status is HealthOK, HealthDegraded or HealthFailing.
	Status string `json:"status"`
	// Reason explains a non-ok status.
	Reason string `json:"reason,omitempty"`
	// Solve echoes the typed status of the most recent solve when known.
	Solve string `json:"solve,omitempty"`
}

// healthState is the settable health override. When unset, /healthz derives
// its answer from the solve watcher.
type healthState struct {
	mu  sync.Mutex
	set bool
	h   Health
}

// SetHealth pins the /healthz answer — solver frontends call it with the
// resilience outcome (recovered → degraded, unrecovered → failing). A zero
// status string clears the override, returning /healthz to watcher-derived
// health.
func (s *Server) SetHealth(status, reason string) {
	s.health.mu.Lock()
	defer s.health.mu.Unlock()
	if status == "" {
		s.health.set = false
		s.health.h = Health{}
		return
	}
	s.health.set = true
	s.health.h = Health{Status: status, Reason: reason}
}

// HealthState returns what /healthz would currently answer.
func (s *Server) HealthState() Health {
	s.health.mu.Lock()
	if s.health.set {
		h := s.health.h
		s.health.mu.Unlock()
		return h
	}
	s.health.mu.Unlock()
	// Derive from the watcher: a finished, non-converged solve means the
	// process is not healthy; everything else (idle, mid-flight, converged)
	// is ok.
	st := s.opt.Watcher.State()
	h := Health{Status: HealthOK, Solve: st.Status}
	if st.Done && !st.Converged {
		h.Status = HealthFailing
		h.Reason = "last solve did not converge"
		if st.Status == krylov.StatusCancelled.String() {
			h.Status = HealthDegraded
			h.Reason = "last solve was cancelled"
		}
	}
	// An exhausted SLO error budget degrades health (latency incident) but
	// never masks a failing solver — correctness trouble outranks slowness.
	if h.Status == HealthOK {
		if exhausted := s.opt.SLO.Exhausted(); len(exhausted) > 0 {
			h.Status = HealthDegraded
			h.Reason = "SLO error budget exhausted: " + strings.Join(exhausted, ", ")
		}
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.HealthState()
	w.Header().Set("Content-Type", "application/json")
	if h.Status == HealthFailing {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}
