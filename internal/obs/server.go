// Package obs provides the embeddable live-observability HTTP server: a
// Prometheus /metrics endpoint over the telemetry registry, a live /debug/solve
// view (JSON snapshot or SSE stream) fed by a SolveWatcher plugged into the
// krylov progress hooks, the stdlib pprof handlers, and a run-report browser.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/prof"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures a Server. All fields are optional: a zero Options yields
// a server whose endpoints report empty metrics / idle solve state.
type Options struct {
	// Registry backs GET /metrics (Prometheus text exposition).
	Registry *telemetry.Registry
	// Watcher backs GET /debug/solve (JSON snapshot and SSE stream).
	Watcher *SolveWatcher
	// RunsDir, when set, backs GET /runs (JSON listing of run reports in the
	// directory) and GET /runs/<name> (the report file itself).
	RunsDir string
	// Heartbeat is the SSE keep-alive interval when no solve updates arrive
	// (default 1s).
	Heartbeat time.Duration
	// Traces backs GET /traces (finished request span trees: JSON listing,
	// /traces/<trace-id> for one tree, ?stream=1 for SSE of new traces).
	Traces *trace.Recorder
	// SLO backs GET /slo and lets budget exhaustion degrade /healthz.
	SLO *SLOMonitor
	// Profiles backs GET /profiles: the continuous sampler's window index,
	// per-window summaries and raw pprof downloads. The server does not
	// start or stop the sampler — ownership stays with the caller.
	Profiles *prof.Sampler
	// Roofline backs GET /roofline and the roofline_* gauges.
	Roofline *RooflineMonitor
	// Cluster backs GET /cluster with the fleet topology when this server
	// fronts a cluster router (internal/cluster). Nil (every plain shard):
	// the route answers 404.
	Cluster TopologyReporter
}

// TopologyReporter is what a cluster router exposes to /cluster: a
// JSON-encodable topology document (peers, states, ring placement). An
// interface keeps obs free of a dependency on internal/cluster, which
// imports this package.
type TopologyReporter interface {
	Topology() any
}

// Server serves the observability endpoints. Construct with NewServer, then
// either mount Handler() on an existing mux or call Start to listen in the
// background.
type Server struct {
	opt Options
	mux *http.ServeMux

	health healthState

	// quit ends long-lived handlers (the /debug/solve SSE streams) on
	// graceful shutdown: http.Server.Shutdown only waits for handlers, it
	// does not interrupt them, so without this signal an attached stream
	// watcher would stall the drain until its client disconnected.
	quit     chan struct{}
	quitOnce sync.Once

	mu sync.Mutex
	ln net.Listener
	hs *http.Server
}

// NewServer builds a server with all endpoints registered.
func NewServer(opt Options) *Server {
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = time.Second
	}
	s := &Server{opt: opt, mux: http.NewServeMux(), quit: make(chan struct{})}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/solve", s.handleSolve)
	s.mux.HandleFunc("/runs", s.handleRuns)
	s.mux.HandleFunc("/runs/", s.handleRunFile)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/traces/", s.handleTraceByID)
	s.mux.HandleFunc("/slo", s.handleSLO)
	s.mux.HandleFunc("/profiles", s.handleProfiles)
	s.mux.HandleFunc("/profiles/", s.handleProfileByID)
	s.mux.HandleFunc("/roofline", s.handleRoofline)
	s.mux.HandleFunc("/version", s.handleVersion)
	s.mux.HandleFunc("/cluster", s.handleCluster)
	// Wire the stdlib profiler explicitly — the package-level init only
	// registers on http.DefaultServeMux, which we deliberately avoid.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the HTTP handler with all endpoints, for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in a background
// goroutine. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	go func() { _ = hs.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops the server: new connections are refused,
// in-flight request handlers drain (SSE streams are told to end via the
// internal quit signal), and the call returns once everything finished or
// ctx expired — the contract of net/http.Server.Shutdown. It is safe to
// call on a server that was never Started (an embedded Handler): only the
// stream-ending signal fires, so a parent server draining its own listener
// still unblocks any attached watchers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

// Close stops a server previously started with Start.
func (s *Server) Close() error {
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `fsai observability server

  /metrics          Prometheus text exposition of the telemetry registry
  /healthz          solver health (ok/degraded/failing; 503 when failing)
  /debug/solve      live solve state (JSON; add ?stream=1 for SSE)
  /debug/pprof/     Go runtime profiles
  /runs             run-report history (JSON listing; /runs/<name> to fetch)
  /traces           finished request traces (JSON; /traces/<trace-id> for the
                    span tree; add ?stream=1 for SSE of new traces)
  /slo              per-fingerprint latency objectives, burn rate, error budget
  /profiles         continuous profiler: window index; /profiles/<id> for the
                    top-N summary with per-job CPU attribution;
                    /profiles/<id>/{cpu,heap,goroutine,mutex} for raw .pb.gz
  /roofline         live roofline: achieved GB/s and GFLOP/s per kernel vs the
                    machine roofs, per-matrix bandwidth baselines and flags
  /version          build info (module, version, go toolchain, vcs revision);
                    the cluster router checks it for shard compatibility
  /cluster          fleet topology when this process is a cluster router
                    (peers, health states, ring placement); 404 on shards
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.opt.Registry.WritePrometheus(w); err != nil {
		// Headers are already out; nothing useful left to do but log-free
		// best effort. The registry writer only fails on the writer itself.
		return
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream") != "" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.opt.Watcher.State())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cancel := s.opt.Watcher.Subscribe()
	defer cancel()

	writeEvent := func(st SolveState) error {
		data, err := json.Marshal(st)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: solve\ndata: %s\n\n", data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}

	heartbeat := time.NewTicker(s.opt.Heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.quit:
			// Graceful shutdown: end the stream so the handler count drains.
			return
		case st, ok := <-ch:
			if !ok {
				return
			}
			if err := writeEvent(st); err != nil {
				return
			}
			// A finished solve ends the stream after its final event so
			// clients like the smoke test and curl terminate cleanly.
			if st.Done {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// runInfo is one entry in the GET /runs listing.
type runInfo struct {
	Name     string `json:"name"`
	Bytes    int64  `json:"bytes"`
	Modified string `json:"modified"`
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	runs := []runInfo{}
	if s.opt.RunsDir != "" {
		entries, err := os.ReadDir(s.opt.RunsDir)
		if err != nil && !os.IsNotExist(err) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			runs = append(runs, runInfo{
				Name:     e.Name(),
				Bytes:    info.Size(),
				Modified: info.ModTime().UTC().Format(time.RFC3339),
			})
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(runs)
}

func (s *Server) handleRunFile(w http.ResponseWriter, r *http.Request) {
	if s.opt.RunsDir == "" {
		http.NotFound(w, r)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/runs/")
	// Reject anything that could escape RunsDir: the listing only ever
	// advertises flat .json names, so that is all we serve back.
	if name == "" || name != filepath.Base(name) || !strings.HasSuffix(name, ".json") {
		http.NotFound(w, r)
		return
	}
	path := filepath.Join(s.opt.RunsDir, name)
	f, err := os.Open(path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	http.ServeContent(w, r, name, time.Time{}, f)
}

// handleTraces serves the trace listing (most recent first) or, with
// ?stream=1 / an SSE Accept header, a live stream of traces as they finish.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	stream := r.URL.Query().Get("stream") != "" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if !stream {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.opt.Traces.List())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cancel := s.opt.Traces.Subscribe()
	defer cancel()

	heartbeat := time.NewTicker(s.opt.Heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.quit:
			return
		case t, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(t)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: trace\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleTraceByID serves one full span tree by trace id.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	t, ok := s.opt.Traces.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t)
}

// handleSLO serves the SLO monitor's full report.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opt.SLO.Report())
}
