// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each BenchmarkTableN / BenchmarkFigureN runs the experiment
// campaign the artifact needs (cached across benchmarks, quick suite by
// default) and reports the artifact's headline numbers as benchmark
// metrics, so `go test -bench .` doubles as a reproduction run:
//
//	pct_avg_time_imp   average % time improvement vs FSAI
//	pct_best_time_imp  same with the best filter per matrix
//	...
//
// Set -benchfull to run the full 72-matrix suite (minutes, not seconds).
package fsaie_test

import (
	"flag"
	"sync"
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/matgen"
	"repro/internal/stats"
)

var benchFull = flag.Bool("benchfull", false, "benchmark the full 72-matrix suite instead of the quick suite")

var (
	rawMu    sync.Mutex
	rawCache = map[int]*experiments.RawCampaign{}
)

func benchSpecs() []matgen.Spec {
	if *benchFull {
		return matgen.Suite()
	}
	return matgen.QuickSuite()
}

// rawFor builds (once) and returns the raw campaign for the given line
// size, with the random-extension and standard-filtering extras enabled so
// every artifact can be rendered from it.
func rawFor(b *testing.B, m arch.Arch) *experiments.RawCampaign {
	b.Helper()
	rawMu.Lock()
	defer rawMu.Unlock()
	if c, ok := rawCache[m.LineBytes]; ok {
		return c
	}
	raw, err := experiments.RunRaw(benchSpecs(), experiments.RawOptions{
		L1:           m.L1Sim,
		WithRandom:   true,
		WithStandard: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rawCache[m.LineBytes] = raw
	return raw
}

func priced(b *testing.B, m arch.Arch) *experiments.PricedCampaign {
	return experiments.Price(rawFor(b, m), m)
}

var sink string

// reportSummary attaches the Tables 2/4/5 headline metrics.
func reportSummary(b *testing.B, c *experiments.PricedCampaign) {
	s := c.Summaries(fsai.VariantFull)
	b.ReportMetric(s[c.RefIndex()].AvgTimePct, "pct_avg_time_imp")
	b.ReportMetric(s[len(s)-1].AvgTimePct, "pct_best_time_imp")
	b.ReportMetric(s[len(s)-1].AvgIterPct, "pct_best_iter_imp")
}

func BenchmarkTable1(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Table1()
	}
	reportSummary(b, c)
}

func BenchmarkTable2(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.SummaryTable()
	}
	reportSummary(b, c)
}

func BenchmarkTable3(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Table3()
	}
}

func BenchmarkTable4(b *testing.B) {
	c := priced(b, arch.POWER9())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.SummaryTable()
	}
	reportSummary(b, c)
}

func BenchmarkTable5(b *testing.B) {
	c := priced(b, arch.A64FX())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.SummaryTable()
	}
	reportSummary(b, c)
}

func BenchmarkFigure2(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.FigureTimeDecrease()
	}
}

func BenchmarkFigure3(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Figure3()
	}
	// Headline: misses per nnz, FSAI vs FSAIE(full) vs random.
	var fs, ext, rnd []float64
	fi := c.RefIndex()
	for i := range c.Results {
		fs = append(fs, c.Results[i].FSAI.MissPerNNZ)
		ext = append(ext, c.Results[i].Full[fi].MissPerNNZ)
		rnd = append(rnd, c.Results[i].RandomMissPerNNZ)
	}
	b.ReportMetric(stats.Mean(fs), "missPerNNZ_fsai")
	b.ReportMetric(stats.Mean(ext), "missPerNNZ_fsaie")
	b.ReportMetric(stats.Mean(rnd), "missPerNNZ_random")
}

func BenchmarkFigure4(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Figure4()
	}
	var fs, ext, rnd []float64
	fi := c.RefIndex()
	for i := range c.Results {
		fs = append(fs, c.Results[i].FSAI.GFlops)
		ext = append(ext, c.Results[i].Full[fi].GFlops)
		rnd = append(rnd, c.Results[i].RandomGFlops)
	}
	b.ReportMetric(stats.Mean(fs), "gflops_fsai")
	b.ReportMetric(stats.Mean(ext), "gflops_fsaie")
	b.ReportMetric(stats.Mean(rnd), "gflops_random")
}

func BenchmarkFigure5(b *testing.B) {
	c := priced(b, arch.POWER9())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.FigureTimeDecrease()
	}
}

func BenchmarkFigure6(b *testing.B) {
	c := priced(b, arch.A64FX())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.FigureTimeDecrease()
	}
}

func BenchmarkFigure7(b *testing.B) {
	sky := priced(b, arch.Skylake())
	p9 := priced(b, arch.POWER9())
	a64 := priced(b, arch.A64FX())
	all := []*experiments.PricedCampaign{sky, p9, a64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure7(all)
	}
	for _, c := range all {
		var vals []float64
		for i := range c.Results {
			bi := c.Results[i].BestFilterIndex(fsai.VariantFull)
			vals = append(vals, c.Results[i].TimeImprovementPct(fsai.VariantFull, bi))
		}
		b.ReportMetric(stats.Median(vals), "median_imp_"+c.Machine.Name)
	}
}

func BenchmarkSetupOverhead(b *testing.B) {
	c := priced(b, arch.Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.SetupOverheadSummary()
	}
	fi := c.RefIndex()
	var ratios []float64
	for i := range c.Results {
		r := &c.Results[i]
		if r.FSAI.Setup > 0 {
			ratios = append(ratios, 100*(r.Full[fi].Setup-r.FSAI.Setup)/r.FSAI.Setup)
		}
	}
	b.ReportMetric(stats.Mean(ratios), "pct_setup_overhead")
}
