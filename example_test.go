package fsaie_test

import (
	"fmt"

	fsaie "repro"
	fsai "repro/internal/core"
	"repro/internal/matgen"
)

// Example builds the cache-aware FSAIE(full) preconditioner for a small
// Poisson system and solves it with PCG.
func Example() {
	a := matgen.Laplace2D(24, 24)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)

	opts := fsaie.DefaultOptions() // FSAIE(full), filter 0.01, 64-byte lines
	p, err := fsaie.New(a, opts)
	if err != nil {
		panic(err)
	}
	res := fsaie.Solve(a, x, b, p, fsaie.SolverDefaults())
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}

// ExampleNew_variants contrasts the three preconditioner constructions of
// the paper's evaluation on one matrix.
func ExampleNew_variants() {
	a := matgen.Laplace2D(32, 32)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	for _, v := range []fsaie.Variant{fsaie.FSAI, fsaie.FSAIESp, fsaie.FSAIEFull} {
		opts := fsaie.DefaultOptions()
		opts.Variant = v
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		res := fsaie.Solve(a, x, b, p, fsaie.SolverDefaults())
		fmt.Printf("%-12v converged=%v extension>=0: %v\n", v, res.Converged, p.ExtensionPct() >= 0)
	}
	// Output:
	// FSAI         converged=true extension>=0: true
	// FSAIE(sp)    converged=true extension>=0: true
	// FSAIE(full)  converged=true extension>=0: true
}

// ExampleAllocAligned pins a vector to a chosen cache-line offset so that
// pattern extensions are reproducible across runs.
func ExampleAllocAligned() {
	x := fsaie.AllocAligned(100, 64, 3)
	fmt.Println("offset:", fsaie.AlignOf(x, 64))
	// Output:
	// offset: 3
}

// ExampleComputeAdaptive grows the pattern dynamically (FSPAI-style) and
// then cache-extends it — the Section 8 composition.
func ExampleComputeAdaptive() {
	a := matgen.Laplace2D(16, 16)
	p, err := fsai.ComputeAdaptive(a, fsai.AdaptiveOptions{
		MaxPerRow:   6,
		Tol:         0.02,
		CacheExtend: 64,
		Filter:      0.01,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("adaptive entries kept under extension:", p.BasePattern.SubsetOf(p.FinalPattern))
	// Output:
	// adaptive entries kept under extension: true
}
