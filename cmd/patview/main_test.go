package main

import (
	"strings"
	"testing"

	fsai "repro/internal/core"
)

func TestMakeMatrixKinds(t *testing.T) {
	for _, kind := range []string{"lap", "band", "wathen"} {
		a := makeMatrix(kind, 64)
		if a.Rows < 16 {
			t.Errorf("%s: only %d rows", kind, a.Rows)
		}
		if !a.IsSymmetric(1e-10) {
			t.Errorf("%s: not symmetric", kind)
		}
	}
}

func TestRenderLegend(t *testing.T) {
	a := makeMatrix("lap", 36)
	base := fsai.InitialPattern(a, 0, 1)
	ext := fsai.ExtendPattern(base, 8, 0, fsai.ClipLower, 0)
	opts := fsai.DefaultOptions()
	opts.Variant = fsai.VariantSp
	p, err := fsai.Compute(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := render(base, ext, p.FinalPattern)
	if !strings.Contains(out, "#") {
		t.Error("no base entries rendered")
	}
	if strings.Count(out, "\n") != a.Rows {
		t.Errorf("want %d lines, got %d", a.Rows, strings.Count(out, "\n"))
	}
	// Row i has at most i+1 glyphs (lower triangle).
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) > i+1 {
			t.Fatalf("row %d too wide: %d", i, len(line))
		}
	}
}
