// Command patview renders the cache-friendly pattern-extension process as
// ASCII art — the analogue of the paper's Figure 1: the initial lower
// triangular pattern, the cache-friendly extension, and the extension after
// precalculation filtering.
//
// Usage:
//
//	patview [-n 64] [-line 64] [-align 0] [-filter 0.01] [-matrix lap|band|wathen]
//
// Legend: '#' initial entry, '+' surviving extension entry, '.' extension
// entry removed by the filter.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/pattern"
	"repro/internal/sparse"
)

func main() {
	var (
		n      = flag.Int("n", 64, "matrix size (grid side is derived per matrix kind)")
		line   = flag.Int("line", 64, "cache line size in bytes")
		align  = flag.Int("align", 0, "element offset of x[0] within its cache line")
		filter = flag.Float64("filter", 0.01, "extension filtering threshold")
		kind   = flag.String("matrix", "lap", "matrix kind: lap, band, wathen")
	)
	flag.Parse()

	a := makeMatrix(*kind, *n)
	if a.Rows > 96 {
		fmt.Fprintf(os.Stderr, "patview: %d rows is too large to draw; choose -n <= 96\n", a.Rows)
		os.Exit(1)
	}

	base := fsai.InitialPattern(a, 0, 1)
	elems := *line / 8
	ext := fsai.ExtendPattern(base, elems, *align, fsai.ClipLower, 0)

	opts := fsai.DefaultOptions()
	opts.Variant = fsai.VariantSp
	opts.Filter = *filter
	opts.LineBytes = *line
	opts.AlignElems = *align
	p, err := fsai.Compute(a, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "patview: %v\n", err)
		os.Exit(1)
	}
	final := p.FinalPattern

	fmt.Printf("Matrix %q: %d x %d, nnz=%d; line=%dB (%d elems), align=%d, filter=%g\n\n",
		*kind, a.Rows, a.Cols, a.NNZ(), *line, elems, *align, *filter)
	fmt.Printf("Initial lower-triangular pattern: %d entries\n", base.NNZ())
	fmt.Printf("Cache-friendly extension:         %d entries (+%.1f%%)\n", ext.NNZ(),
		100*float64(ext.NNZ()-base.NNZ())/float64(base.NNZ()))
	fmt.Printf("After precalculation filtering:   %d entries (+%.1f%%)\n\n", final.NNZ(),
		100*float64(final.NNZ()-base.NNZ())/float64(base.NNZ()))
	fmt.Println(render(base, ext, final))
}

func makeMatrix(kind string, n int) *sparse.CSR {
	switch kind {
	case "lap":
		side := 1
		for side*side < n {
			side++
		}
		return matgen.Laplace2D(side, side)
	case "band":
		return matgen.BandedSPD(n, 6, 1, 42)
	case "wathen":
		side := 1
		for 3*side*side+4*side+1 < n {
			side++
		}
		return matgen.Wathen(side, side, 42)
	default:
		fmt.Fprintf(os.Stderr, "patview: unknown matrix kind %q\n", kind)
		os.Exit(1)
		return nil
	}
}

// render draws the three-layer pattern: '#' base, '+' kept extension, '.'
// filtered-out extension, ' ' empty.
func render(base, ext, final *pattern.Pattern) string {
	var sb strings.Builder
	for i := 0; i < base.Rows; i++ {
		for j := 0; j <= i; j++ {
			switch {
			case base.Contains(i, j):
				sb.WriteByte('#')
			case final.Contains(i, j):
				sb.WriteByte('+')
			case ext.Contains(i, j):
				sb.WriteByte('.')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
