// Command fsaisolve is the production entry point of the library: it reads
// an SPD system from a Matrix Market file, builds the requested
// preconditioner and solves with PCG, reporting setup/solve times,
// iteration counts and (optionally) the Lanczos-estimated condition number
// of the preconditioned operator.
//
// Usage:
//
//	fsaisolve [flags] matrix.mtx
//
//	-precond NAME   none|jacobi|bjacobi|ssor|ic0|cheby|fsai|fsaie-sp|fsaie|adaptive (default fsaie)
//	-filter F       FSAIE filter threshold (default 0.01)
//	-line N         cache line size in bytes for the extension (default 64)
//	-power N        initial pattern = lower(Ã^N) (default 1)
//	-tau T          threshold A before powering (default 0)
//	-tol T          PCG relative tolerance (default 1e-8)
//	-maxiter N      PCG iteration cap (default 10000)
//	-rcm            reorder the system with reverse Cuthill-McKee first
//	-rhs FILE       right-hand side, one value per line (default: all ones)
//	-out FILE       write the solution, one value per line
//	-cond           estimate condition numbers with Lanczos (extra cost)
//	-history        print an ASCII convergence plot
//	-trace          print the setup phase span tree and solve breakdown to stderr
//	-metrics-out F  write a machine-readable run report (JSON) to F
//	-align N        pin the x-vector cache-line offset in elements (-1: as allocated)
//	-listen ADDR    serve the observability endpoints (/metrics, /debug/solve,
//	                /debug/pprof/, /runs) on ADDR (":0" picks a free port)
//	-hold           with -listen: keep serving after the solve until SIGINT/SIGTERM
//	-runs-dir DIR   directory served under /runs (default: the -metrics-out directory)
//	-pprof ADDR     serve net/http/pprof on ADDR (e.g. localhost:6060)
//	-machine NAME   roofline machine model for the achieved-performance
//	                placement: Skylake|POWER9|A64FX (default Skylake)
//	-timeout D      overall solve wall-clock budget (e.g. 30s); on expiry the
//	                solve stops cooperatively at a resumable checkpoint and the
//	                tool exits 3
//	-resilient      route the solve through the adaptive recovery chain
//	                (internal/resilience): diagonal-shift setup retries, then
//	                preconditioner fallback fsaie → fsaie-sp → fsai → jacobi →
//	                none with warm restarts from the best iterate; the recovery
//	                log streams to stderr and lands in the -metrics-out report
//
// SIGINT/SIGTERM cancel a running solve cooperatively (status "cancelled",
// exit 3); a second signal force-kills. With -listen -hold, the first
// signal also drains the observability server gracefully.
//
// Exit status: 0 when the solve converged, 1 on runtime errors (unreadable
// input, preconditioner setup failure), 2 on usage errors, 3 when the solve
// finished without reaching the tolerance — iteration cap, breakdown (with
// -resilient: only after the whole recovery chain is exhausted), or -timeout
// expiry or interruption. fsaicompare shares the 0 = ok / 2 = usage convention but uses exit
// 1 for "regression found"; exit 3 is specific to the solver tools.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/krylov"
	"repro/internal/mmio"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/precond"
	"repro/internal/reorder"
	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		precName   = flag.String("precond", "fsaie", "preconditioner: none|jacobi|bjacobi|ssor|ic0|cheby|fsai|fsaie-sp|fsaie|adaptive")
		filter     = flag.Float64("filter", 0.01, "FSAIE filter threshold")
		line       = flag.Int("line", 64, "cache line size in bytes")
		power      = flag.Int("power", 1, "initial pattern power N of Ã^N")
		tau        = flag.Float64("tau", 0, "threshold for Ã")
		tol        = flag.Float64("tol", 1e-8, "PCG relative residual tolerance")
		maxIter    = flag.Int("maxiter", 10000, "PCG iteration cap")
		useRCM     = flag.Bool("rcm", false, "reorder with reverse Cuthill-McKee")
		rhsPath    = flag.String("rhs", "", "right-hand side file (one value per line)")
		outPath    = flag.String("out", "", "solution output file")
		withCond   = flag.Bool("cond", false, "estimate condition numbers (Lanczos)")
		history    = flag.Bool("history", false, "print convergence plot")
		traceFlag  = flag.Bool("trace", false, "print setup phase spans and solve breakdown to stderr")
		metricsOut = flag.String("metrics-out", "", "write a machine-readable run report (JSON) to this file")
		alignFlag  = flag.Int("align", -1, "pin the x-vector cache-line offset in elements (-1: as allocated)")
		listenAddr = flag.String("listen", "", "serve observability endpoints on this address (\":0\" picks a free port)")
		hold       = flag.Bool("hold", false, "with -listen: keep serving after the solve until SIGINT/SIGTERM")
		runsDir    = flag.String("runs-dir", "", "directory served under /runs (default: the -metrics-out directory)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		timeout    = flag.Duration("timeout", 0, "overall solve wall-clock budget (0: none); exits 3 on expiry")
		resilient  = flag.Bool("resilient", false, "solve through the adaptive recovery chain (internal/resilience)")
		machineStr = flag.String("machine", "Skylake", "roofline machine model: Skylake|POWER9|A64FX")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the solve cooperatively through krylov
	// Options.Ctx: the solver stops at a resumable checkpoint, the result
	// reports status "cancelled" and the tool exits 3 — same contract as
	// -timeout expiry. Installed before the (possibly slow) matrix read so
	// an early interrupt is honored too. After the first signal the default
	// handling is restored, so a second interrupt force-kills a stuck
	// process.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-sigCtx.Done()
		stopSignals()
	}()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "fsaisolve: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	observing := *traceFlag || *metricsOut != "" || *listenAddr != ""
	var tracer *telemetry.Tracer
	if *traceFlag {
		tracer = telemetry.NewTracer(os.Stderr)
	} else if *metricsOut != "" {
		tracer = telemetry.NewTracer(nil)
	}
	var metrics *telemetry.Registry
	if *metricsOut != "" || *listenAddr != "" {
		metrics = telemetry.NewRegistry()
		sparse.EnableOpCounters(true)
	}

	machine, machineOK := arch.ByName(*machineStr)
	if !machineOK {
		fatal("unknown -machine %q (want Skylake|POWER9|A64FX)", *machineStr)
	}
	var roofMon *obs.RooflineMonitor
	if observing {
		roofMon = obs.NewRooflineMonitor(machine, metrics)
	}

	var watcher *obs.SolveWatcher
	var srv *obs.Server
	if *listenAddr != "" {
		watcher = obs.NewSolveWatcher()
		dir := *runsDir
		if dir == "" && *metricsOut != "" {
			dir = filepath.Dir(*metricsOut)
		}
		srv = obs.NewServer(obs.Options{Registry: metrics, Watcher: watcher, RunsDir: dir, Roofline: roofMon})
		addr, err := srv.Start(*listenAddr)
		if err != nil {
			fatal("listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "observability server listening on http://%s\n", addr)
	}

	a, err := mmio.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("read: %v", err)
	}
	if a.Rows != a.Cols {
		fatal("matrix is %dx%d, need square", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10 * a.MaxNorm()) {
		fatal("matrix is not symmetric; PCG requires SPD input")
	}
	fmt.Printf("system: %d unknowns, %d nonzeros\n", a.Rows, a.NNZ())

	b := make([]float64, a.Rows)
	if *rhsPath != "" {
		if b, err = readVector(*rhsPath, a.Rows); err != nil {
			fatal("rhs: %v", err)
		}
	} else {
		for i := range b {
			b[i] = 1
		}
	}

	var perm reorder.Permutation
	if *useRCM {
		perm = reorder.RCM(a)
		bwBefore := reorder.Bandwidth(a)
		a = reorder.ApplySym(a, perm)
		b = reorder.PermuteVec(b, perm)
		fmt.Printf("rcm: bandwidth %d -> %d\n", bwBefore, reorder.Bandwidth(a))
	}

	// -align pins the x-vector's cache-line offset for reproducible miss
	// counts (CI baselines); by default the natural allocation decides.
	var x []float64
	var align int
	if *alignFlag >= 0 {
		align = *alignFlag % (*line / 8)
		x = cachesim.AllocAligned(a.Rows, *line, align)
	} else {
		x = make([]float64, a.Rows)
		align = cachesim.AlignOf(x, *line)
	}

	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(sigCtx, *timeout)
		defer cancel()
	}

	fo := fsai.Options{
		Filter:       *filter,
		LineBytes:    *line,
		AlignElems:   align,
		PatternPower: *power,
		ThresholdTau: *tau,
		MaxRowNNZ:    512,
		Tracer:       tracer,
	}
	opts := krylov.Options{
		Tol: *tol, MaxIter: *maxIter,
		RecordHistory: *history || *metricsOut != "",
		CollectTiming: observing,
		Metrics:       metrics,
		Ctx:           ctx,
	}
	if watcher != nil {
		watcher.Begin(fmt.Sprintf("%s/%s", filepath.Base(flag.Arg(0)), *precName), *tol, *maxIter)
		opts.Progress = watcher.Progress
		opts.ProgressDetail = watcher.ProgressDetail
	}

	var (
		res          krylov.Result
		g            *fsai.Preconditioner
		rout         *resilience.Outcome
		setup, solve time.Duration
	)
	finalPrecond := *precName
	if *resilient {
		if resilience.Chain(*precName) == nil {
			fatal("-resilient needs -precond to name a recovery rung: %s",
				strings.Join(resilience.Chain(resilience.PrecondFSAIEFull), "|"))
		}
		out, rerr := resilience.Solve(ctx, a, x, b, resilience.Options{
			Precond: *precName,
			Setup:   fo,
			Solve:   opts,
			Metrics: metrics,
			OnAttempt: func(at resilience.Attempt) {
				msg := fmt.Sprintf("resilience: %-5s %-8s status=%s", at.Stage, at.Precond, at.Status)
				if at.Shift > 0 {
					msg += fmt.Sprintf(" shift=%.3g", at.Shift)
				}
				if at.Stage == "solve" {
					msg += fmt.Sprintf(" iters=%d relres=%.2e", at.Iterations, at.RelRes)
				}
				fmt.Fprintln(os.Stderr, msg)
			},
		})
		if out == nil {
			fatal("resilient solve: %v", rerr)
		}
		if rerr != nil && !errors.Is(rerr, resilience.ErrNotConverged) &&
			!errors.Is(rerr, context.Canceled) && !errors.Is(rerr, context.DeadlineExceeded) {
			fatal("resilient solve: %v", rerr)
		}
		res, g, rout = out.Result, out.FSAI, out
		finalPrecond = out.Precond
		// The chain interleaves setup and solve attempts; split the wall
		// clock the same way the log does.
		for _, at := range out.Log.Attempts {
			if at.Stage == "setup" {
				setup += time.Duration(at.NS)
			} else {
				solve += time.Duration(at.NS)
			}
		}
		if srv != nil && out.Recovered && res.Converged {
			srv.SetHealth(obs.HealthDegraded, fmt.Sprintf(
				"recovered on %q after %d setup retries and %d fallbacks",
				out.Precond, out.Log.Retries, out.Log.Fallbacks))
		}
	} else {
		t0 := time.Now()
		m, gp, err := buildPreconditioner(*precName, a, fo)
		if err != nil {
			fatal("preconditioner: %v", err)
		}
		g = gp
		setup = time.Since(t0)
		t0 = time.Now()
		res = krylov.Solve(a, x, b, m, opts)
		solve = time.Since(t0)
	}
	watcher.End(res)

	fmt.Printf("precond=%s setup=%.1fms solve=%.1fms iterations=%d converged=%v relres=%.2e\n",
		finalPrecond, msec(setup), msec(solve), res.Iterations, res.Converged, res.RelResidual)

	if *traceFlag {
		tm := res.Timing
		fmt.Fprintf(os.Stderr, "solve breakdown: spmv=%.1fms precond=%.1fms blas1=%.1fms total=%.1fms\n",
			msec(tm.SpMV), msec(tm.Precond), msec(tm.BLAS1), msec(tm.Total))
	}

	// Live roofline placement: per-kernel achieved GB/s and GFLOP/s against
	// the -machine model, into the roofline_* gauges and the run report.
	var rsol *obs.RooflineSolve
	if roofMon != nil && res.Iterations > 0 && res.Timing != (krylov.Timing{}) {
		var gm *sparse.CSR
		if g != nil {
			gm = g.G
		}
		t := res.Timing
		est := roofline.SolveEstimate(a, gm, res.Iterations,
			t.SpMV.Nanoseconds(), t.Precond.Nanoseconds(), t.BLAS1.Nanoseconds(), machine)
		if len(est) > 0 {
			rs := roofMon.Observe("", a.Fingerprint(), res.Iterations, est)
			rsol = &rs
			if *traceFlag {
				for _, e := range est {
					fmt.Fprintf(os.Stderr, "roofline: %-8s %.2f GB/s %.2f GFLOP/s (%.1f%% of %s bound, %s-bound)\n",
						e.Kernel, e.AchievedBandwidthBytes/1e9, e.AchievedFlops/1e9,
						e.PctOfAttainable, machine.Name, e.Bound)
				}
			}
		}
	}

	// Cache-miss attribution of the preconditioner application, for the run
	// report's cache section and the live /metrics series.
	var cacheSection *experiments.RunCacheAttrib
	if g != nil && metrics != nil {
		// Same geometry as the paper's simulated L1 (512 lines, 8 ways),
		// scaled to the requested line size.
		sim := cachesim.New(cachesim.Config{SizeBytes: 512 * *line, LineBytes: *line, Ways: 8})
		topt := cachesim.TraceOptions{AlignElems: align, IncludeStreams: true}
		gp := pattern.FromCSR(g.G)
		base := g.BasePattern
		if base == nil {
			base = gp
		}
		attr := cachesim.TracePreconditionAttrib(sim, gp, base, topt, 0)
		attr.Publish(metrics)
		fsai.PublishSetupStats(metrics, *precName, &g.Stats)
		elems := *line / 8
		var modelLV float64
		if g.NNZ() > 0 {
			lv := cachesim.CountLineVisits(gp, elems, align) +
				cachesim.CountLineVisits(gp.Transpose(), elems, align)
			modelLV = float64(lv) / float64(g.NNZ())
		}
		cacheSection = experiments.RunCacheOf(&attr, modelLV)
		cacheSection.MeasuredAI = sparse.ReadOpCounters().AI()
	}

	if *metricsOut != "" {
		entry := experiments.RunEntry{
			Matrix:      filepath.Base(flag.Arg(0)),
			Rows:        a.Rows,
			NNZ:         a.NNZ(),
			Variant:     *precName,
			Filter:      *filter,
			Iterations:  res.Iterations,
			Converged:   res.Converged,
			SetupWallNS: setup.Nanoseconds(),
			SolveWallNS: solve.Nanoseconds(),
			History:     res.History,
		}
		if res.Status != krylov.StatusUnknown {
			entry.Status = res.Status.String()
		}
		entry.Resilience = experiments.RunResilienceOf(*precName, rout)
		if t := res.Timing; t != (krylov.Timing{}) {
			entry.Timing = &experiments.RunTiming{
				SpMVNS:    t.SpMV.Nanoseconds(),
				PrecondNS: t.Precond.Nanoseconds(),
				BLAS1NS:   t.BLAS1.Nanoseconds(),
				TotalNS:   t.Total.Nanoseconds(),
			}
		}
		if g != nil {
			entry.NNZG = g.NNZ()
			entry.ExtPct = g.ExtensionPct()
			entry.SetupPhases = g.Stats.Phases
			entry.Cache = cacheSection
		}
		if rsol != nil {
			entry.Roofline = &experiments.RunRoofline{
				Machine:                rsol.Machine,
				Kernels:                rsol.Kernels,
				BaselineBandwidthBytes: rsol.BaselineBandwidthBytes,
				LowBandwidth:           rsol.LowBandwidth,
			}
		}
		rep := &experiments.RunReport{
			Tool: "fsaisolve",
			// One-shot runs are their own trace: the stamped id correlates
			// this report with any log capture of the same invocation and
			// keeps the schema-v5 field uniform across fsaisolve and fsaid.
			TraceID:   trace.NewTraceID(),
			LineBytes: *line,
			Entries:   []experiments.RunEntry{entry},
		}
		if metrics != nil {
			snap := metrics.Snapshot()
			rep.Metrics = &snap
		}
		rep.SetSpMVOps(sparse.ReadOpCounters())
		if err := experiments.WriteRunReportFile(*metricsOut, rep); err != nil {
			fatal("metrics-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote run report to %s\n", *metricsOut)
	}

	if *withCond {
		base, err := spectral.CondOfMatrix(a, 80)
		if err == nil {
			fmt.Printf("κ(A) ≈ %.4g\n", base.Cond())
		}
		if g != nil {
			pc, err := spectral.CondFSAI(a, g.G, g.GT, 80)
			if err == nil {
				fmt.Printf("κ(G·A·Gᵀ) ≈ %.4g\n", pc.Cond())
			}
		}
	}
	if *history && len(res.History) > 1 {
		fmt.Println(stats.ConvergencePlot(
			[]string{*precName}, [][]float64{res.History}, 72, 8))
	}

	if *outPath != "" {
		if perm != nil {
			x = reorder.UnpermuteVec(x, perm)
		}
		if err := writeVector(*outPath, x); err != nil {
			fatal("out: %v", err)
		}
		fmt.Printf("wrote solution to %s\n", *outPath)
	}

	if *hold && *listenAddr != "" && sigCtx.Err() == nil {
		fmt.Fprintln(os.Stderr, "holding for scrapes; interrupt to exit")
		<-sigCtx.Done()
		// Graceful drain: end any attached SSE watchers and let in-flight
		// scrapes finish before exiting.
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Shutdown(shCtx)
		shCancel()
	}

	// Exit 3 on any non-converged end state (see the doc comment's exit
	// status contract) so scripts and CI can tell "solved" from "gave up"
	// without parsing stdout.
	if !res.Converged {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// Name the deadline outcome explicitly: the status alone says
			// "cancelled" without saying why.
			fmt.Fprintf(os.Stderr, "fsaisolve: -timeout %s expired; solve stopped at iteration %d (status: %s)\n",
				*timeout, res.Iterations, res.Status)
		} else {
			fmt.Fprintf(os.Stderr, "fsaisolve: solve did not converge (status: %s)\n", res.Status)
		}
		os.Exit(3)
	}
}

// buildPreconditioner constructs the named preconditioner; the second
// return is non-nil for FSAI-family preconditioners (for -cond).
func buildPreconditioner(name string, a *sparse.CSR, fo fsai.Options) (krylov.Preconditioner, *fsai.Preconditioner, error) {
	switch name {
	case "none":
		return krylov.Identity{}, nil, nil
	case "jacobi":
		return krylov.NewJacobi(a), nil, nil
	case "bjacobi":
		m, err := precond.NewBlockJacobi(a, 16)
		return m, nil, err
	case "ssor":
		m, err := precond.NewSSOR(a, 1.0)
		return m, nil, err
	case "ic0":
		m, err := precond.NewIC0(a)
		return m, nil, err
	case "cheby":
		ext, err := spectral.CondOfMatrix(a, 60)
		if err != nil {
			return nil, nil, err
		}
		m, err := precond.NewChebyshev(a, 8, ext.Min*0.3, ext.Max*1.05)
		return m, nil, err
	case "fsai":
		fo.Variant = fsai.VariantFSAI
		p, err := fsai.Compute(a, fo)
		return p, p, err
	case "fsaie-sp":
		fo.Variant = fsai.VariantSp
		p, err := fsai.Compute(a, fo)
		return p, p, err
	case "fsaie":
		fo.Variant = fsai.VariantFull
		p, err := fsai.Compute(a, fo)
		return p, p, err
	case "adaptive":
		p, err := fsai.ComputeAdaptive(a, fsai.AdaptiveOptions{
			MaxPerRow:   12,
			Tol:         0.02,
			CacheExtend: fo.LineBytes,
			AlignElems:  fo.AlignElems,
			Filter:      fo.Filter,
		})
		return p, p, err
	default:
		return nil, nil, fmt.Errorf("unknown preconditioner %q", name)
	}
}

func readVector(path string, n int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", line)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) != n {
		return nil, fmt.Errorf("got %d values, want %d", len(out), n)
	}
	return out, nil
}

func writeVector(path string, x []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, v := range x {
		if _, err := fmt.Fprintf(w, "%.17g\n", v); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func msec(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsaisolve: "+format+"\n", args...)
	os.Exit(1)
}
