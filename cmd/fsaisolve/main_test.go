package main

import (
	"os"
	"path/filepath"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
)

func TestBuildPreconditionerAllKinds(t *testing.T) {
	a := matgen.Laplace2D(12, 12)
	fo := fsai.DefaultOptions()
	for _, name := range []string{"none", "jacobi", "bjacobi", "ssor", "ic0", "fsai", "fsaie-sp", "fsaie", "adaptive"} {
		m, g, err := buildPreconditioner(name, a, fo)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m == nil {
			t.Fatalf("%s: nil preconditioner", name)
		}
		isFSAI := name == "fsai" || name == "fsaie-sp" || name == "fsaie" || name == "adaptive"
		if isFSAI != (g != nil) {
			t.Errorf("%s: factor handle mismatch", name)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		if res := krylov.Solve(a, x, b, m, krylov.DefaultOptions()); !res.Converged {
			t.Errorf("%s: solve failed", name)
		}
	}
	if _, _, err := buildPreconditioner("magic", a, fo); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	want := []float64{1.5, -2, 3e-7, 0}
	if err := writeVector(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readVector(path, len(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("v[%d]=%g want %g", i, got[i], want[i])
		}
	}
	if _, err := readVector(path, 3); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("1.0\nnot-a-number\n"), 0o644)
	if _, err := readVector(bad, 2); err == nil {
		t.Error("bad value accepted")
	}
}
