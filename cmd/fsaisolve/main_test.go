package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/mmio"
)

func TestBuildPreconditionerAllKinds(t *testing.T) {
	a := matgen.Laplace2D(12, 12)
	fo := fsai.DefaultOptions()
	for _, name := range []string{"none", "jacobi", "bjacobi", "ssor", "ic0", "fsai", "fsaie-sp", "fsaie", "adaptive"} {
		m, g, err := buildPreconditioner(name, a, fo)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m == nil {
			t.Fatalf("%s: nil preconditioner", name)
		}
		isFSAI := name == "fsai" || name == "fsaie-sp" || name == "fsaie" || name == "adaptive"
		if isFSAI != (g != nil) {
			t.Errorf("%s: factor handle mismatch", name)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		if res := krylov.Solve(a, x, b, m, krylov.DefaultOptions()); !res.Converged {
			t.Errorf("%s: solve failed", name)
		}
	}
	if _, _, err := buildPreconditioner("magic", a, fo); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	want := []float64{1.5, -2, 3e-7, 0}
	if err := writeVector(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readVector(path, len(want))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("v[%d]=%g want %g", i, got[i], want[i])
		}
	}
	if _, err := readVector(path, 3); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("1.0\nnot-a-number\n"), 0o644)
	if _, err := readVector(bad, 2); err == nil {
		t.Error("bad value accepted")
	}
}

// TestSignalCancelsSolve builds the real binary, starts a solve that cannot
// finish (unreachable tolerance, huge iteration cap), interrupts it with
// SIGINT and expects the cooperative-cancellation contract: exit code 3 and
// a "cancelled" status report.
func TestSignalCancelsSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fsaisolve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	// Large enough that plain CG with an unreachable tolerance keeps
	// iterating far past the interrupt (a small system can hit an exact
	// zero residual and converge before the signal lands).
	mtx := filepath.Join(dir, "lap.mtx")
	if err := mmio.WriteFile(mtx, matgen.Laplace2D(400, 400), true); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-precond", "none", "-tol", "1e-300", "-maxiter", "1000000000", mtx)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the solve a moment to get into the iteration loop, then interrupt.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != 3 {
			t.Fatalf("exit err=%v (stderr: %s), want exit code 3", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("SIGINT did not stop the solve")
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Fatalf("stderr does not report cancelled status:\n%s", stderr.String())
	}
}
