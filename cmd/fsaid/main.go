// Command fsaid is the long-running solve daemon: it serves the
// internal/service HTTP/JSON API — a content-addressed matrix registry, an
// LRU cache of computed FSAI/FSAIE factors (warm solves skip setup
// entirely) and an admission-controlled job queue — with the observability
// endpoints (/metrics, /healthz, /debug/solve, /debug/pprof/, /runs)
// mounted on the same listener.
//
// Usage:
//
//	fsaid serve [flags]            run the daemon
//	  -listen ADDR      listen address (default :7474; ":0" picks a free port)
//	  -runs-dir DIR     keep per-job run reports here, served under /runs
//	  -data-dir DIR     durable store for matrices and computed factors; on
//	                    restart the registry and preconditioner cache are
//	                    rehydrated from here, so warm solves survive crashes
//	  -mem-soft-limit S soft heap watermark (e.g. 512MiB); above it the daemon
//	                    sheds cold solves (429) and evicts cached factors
//	  -idempotency N    completed solve responses retained for
//	                    Idempotency-Key replay (default 256)
//	  -max-inflight N   concurrent solve jobs (default 2)
//	  -queue N          jobs allowed to wait for a slot (default 16)
//	  -cache N          cached preconditioner factors (default 16)
//	  -matrices N       registry capacity (default 128)
//	  -workers N        kernel parallelism per solve (default: all CPUs)
//	  -timeout D        default per-job deadline (default 60s)
//	  -batch-window D   collect concurrent warm solves on the same operator
//	                    for up to D (e.g. 5ms) and run them as one block
//	                    solve over a single admission slot (0: batching off)
//	  -batch-max N      jobs per batch; a full batch launches before the
//	                    window closes (default 8)
//	  -log-level L      structured-log level: debug|info|warn|error (default info)
//	  -log-format F     structured-log format: text|json (default text)
//	  -trace-history N  finished request traces kept for /traces (default 256)
//	  -slo-warm D       warm (cache-hit) solve p95 objective (default 2s)
//	  -slo-cold D       cold solve p95 objective (default 30s)
//	  -slo-queue D      queue-wait p95 objective (default 5s)
//	  -slo-window D     SLO sliding window (default 10m)
//	  -slo-min-events N window events before the budget can exhaust (default 10)
//	  -machine NAME     roofline machine model: Skylake|POWER9|A64FX (default Skylake)
//	  -prof-window D    continuous-profiling capture window (default 10s)
//	  -prof-gap D       pause between capture windows (default 50s)
//	  -prof-keep N      profiling windows retained for /profiles (default 32)
//
//	fsaid route [flags]            run the cluster router in front of a fleet
//	  -listen ADDR      listen address (default :7575; ":0" picks a free port)
//	  -peers LIST       comma-separated shard addresses (required), e.g.
//	                    127.0.0.1:7474,127.0.0.1:7475,127.0.0.1:7476
//	  -replicas N       replica shards per matrix beyond the primary (default 1)
//	  -vnodes N         virtual nodes per shard on the hash ring (default 160)
//	  -bounded-load F   bounded-load placement factor c (default 1.25)
//	  -warm-threshold N routed cache-hit solves on one matrix before its
//	                    factor is replicated to the replicas (default 3;
//	                    negative disables warming)
//	  -probe-interval D per-peer health-probe period (default 1s)
//	  -name NAME        router name in the X-Fsaid-Forwarded-By loop-guard
//	                    header (default fsaid-router)
//	  -log-level L -log-format F -trace-history N   as for serve
//
//	fsaid register [flags]         register a matrix with a running daemon
//	  -addr URL         daemon address (default http://127.0.0.1:7474)
//	  -matgen NAME      register a generator-suite matrix by spec name
//	  -file F.mtx       upload a MatrixMarket file instead
//	  -name ALIAS       optional registry alias
//
//	fsaid solve [flags]            submit a solve job and wait for the result
//	  -addr URL         daemon address
//	  -matrix REF       registered matrix (fingerprint or alias) — required
//	  -precond NAME     none|jacobi|fsai|fsaie-sp|fsaie|adaptive (default fsaie)
//	  -filter F -line N -power N -tau T -tol T -maxiter N   as in fsaisolve
//	  -resilient        route through the adaptive recovery chain
//	  -timeout D        job deadline
//	  -retries N        attempts on 429/503/transport errors (default 1: no
//	                    retry); backoff honors the server's Retry-After, one
//	                    idempotency key spans all attempts, and -deadline
//	                    bounds the whole loop
//	  -deadline D       overall client budget across attempts; propagated to
//	                    the server, which cancels queued and in-flight work
//	                    when it expires (exit 3)
//
//	fsaid stats [-addr URL]        print the daemon's registry/cache/queue stats
//	fsaid jobs  [-addr URL]        print the daemon's job history
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight jobs drain,
// streaming watchers are ended, then the process exits. A second signal
// force-exits.
//
// Exit status: 0 ok (for solve: converged), 1 runtime error, 2 usage
// error, 3 solve finished without converging OR the -deadline expired —
// the fsaisolve convention (deadline expiry is a cancellation).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "route":
		cmdRoute(os.Args[2:])
	case "register":
		cmdRegister(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "jobs":
		cmdJobs(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fsaid: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: fsaid <subcommand> [flags]

  serve      run the solve daemon
  route      run the cluster router in front of a fleet of daemons
  register   register a matrix with a running daemon
  solve      submit a solve job and wait for the result
  stats      print daemon registry/cache/queue statistics
  jobs       print the daemon job history

Run "fsaid <subcommand> -h" for flags.
`)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsaid: "+format+"\n", args...)
	os.Exit(1)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("fsaid serve", flag.ExitOnError)
	var (
		listen       = fs.String("listen", ":7474", "listen address (\":0\" picks a free port)")
		runsDir      = fs.String("runs-dir", "", "keep per-job run reports here (served under /runs)")
		dataDir      = fs.String("data-dir", "", "durable store for matrices and factors (survives restarts)")
		memSoft      = fs.String("mem-soft-limit", "", "soft heap watermark, e.g. 512MiB (empty: no shedding)")
		idemEntries  = fs.Int("idempotency", 0, "completed responses kept for Idempotency-Key replay (default 256)")
		maxInflight  = fs.Int("max-inflight", 0, "concurrent solve jobs (default 2)")
		queueCap     = fs.Int("queue", 0, "jobs allowed to wait for a slot (default 16)")
		cacheN       = fs.Int("cache", 0, "cached preconditioner factors (default 16)")
		matrixCap    = fs.Int("matrices", 0, "matrix registry capacity (default 128)")
		workers      = fs.Int("workers", 0, "kernel parallelism per solve (0: all CPUs)")
		timeout      = fs.Duration("timeout", 0, "default per-job deadline (default 60s)")
		batchWindow  = fs.Duration("batch-window", 0, "batch window for concurrent warm solves (0: batching off)")
		batchMax     = fs.Int("batch-max", 0, "jobs per batch (default 8)")
		logLevel     = fs.String("log-level", "info", "structured-log level: debug|info|warn|error")
		logFormat    = fs.String("log-format", "text", "structured-log format: text|json")
		traceHistory = fs.Int("trace-history", 0, "finished request traces kept for /traces (default 256)")
		sloWarm      = fs.Duration("slo-warm", 0, "warm (cache-hit) solve p95 objective (default 2s)")
		sloCold      = fs.Duration("slo-cold", 0, "cold solve p95 objective (default 30s)")
		sloQueue     = fs.Duration("slo-queue", 0, "queue-wait p95 objective (default 5s)")
		sloWindow    = fs.Duration("slo-window", 0, "SLO sliding window (default 10m)")
		sloMinEvents = fs.Int("slo-min-events", 0, "events in the window before the budget can exhaust (default 10)")
		machine      = fs.String("machine", "", "roofline machine model: Skylake|POWER9|A64FX (default Skylake)")
		profWindow   = fs.Duration("prof-window", 0, "continuous-profiling capture window (default 10s)")
		profGap      = fs.Duration("prof-gap", 0, "pause between profiling windows (default 50s)")
		profKeep     = fs.Int("prof-keep", 0, "profiling windows retained for /profiles (default 32)")
	)
	_ = fs.Parse(args)

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsaid serve: %v\n", err)
		os.Exit(2)
	}
	if *runsDir != "" {
		if err := os.MkdirAll(*runsDir, 0o755); err != nil {
			fatal("runs-dir: %v", err)
		}
	}
	softLimit, err := parseSize(*memSoft)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsaid serve: -mem-soft-limit: %v\n", err)
		os.Exit(2)
	}
	metrics := telemetry.NewRegistry()
	stopRuntime := telemetry.StartRuntimeMetrics(metrics, 0)
	defer stopRuntime()

	var st *store.Store
	if *dataDir != "" {
		// Open replays the manifest, verifies checksums and quarantines
		// anything corrupt; the server drains the recovered entries into the
		// registry and preconditioner cache, so the first solve after a crash
		// is already warm. The server owns the store from here (Close).
		if st, err = store.Open(*dataDir, store.Options{Metrics: metrics, Logger: logger}); err != nil {
			fatal("data-dir: %v", err)
		}
	}

	srv := service.New(service.Options{
		Metrics:            metrics,
		RunsDir:            *runsDir,
		Store:              st,
		MemSoftLimitBytes:  softLimit,
		IdempotencyEntries: *idemEntries,
		MaxInflight:        *maxInflight,
		QueueCap:           *queueCap,
		CacheEntries:       *cacheN,
		MatrixCap:          *matrixCap,
		Workers:            *workers,
		DefaultTimeout:     *timeout,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		Logger:             logger,
		TraceHistory:       *traceHistory,
		SLO: obs.SLOObjectives{
			WarmSolveP95: *sloWarm,
			ColdSolveP95: *sloCold,
			QueueWaitP95: *sloQueue,
			Window:       *sloWindow,
			MinEvents:    *sloMinEvents,
		},
		Machine: *machine,
		Profiling: prof.Options{
			Window:   *profWindow,
			Gap:      *profGap,
			Capacity: *profKeep,
		},
	})
	addr, err := srv.Start(*listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	logger.Info("fsaid listening", "addr", "http://"+addr.String())

	sigCtx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	<-sigCtx.Done()
	// Restore default signal handling immediately: a second SIGINT/SIGTERM
	// during the drain kills the process instead of being swallowed.
	stopSignals()

	logger.Info("shutting down, draining in-flight jobs")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "error", err.Error())
		_ = srv.Close()
		os.Exit(1)
	}
}

// cmdRoute runs the cluster router: the daemon API unchanged, fanned out
// over a fleet of shards by consistent-hash placement with failover.
func cmdRoute(args []string) {
	fs := flag.NewFlagSet("fsaid route", flag.ExitOnError)
	var (
		listen        = fs.String("listen", ":7575", "listen address (\":0\" picks a free port)")
		peers         = fs.String("peers", "", "comma-separated shard addresses (required)")
		replicas      = fs.Int("replicas", 0, "replica shards per matrix beyond the primary (default 1)")
		vnodes        = fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (default 160)")
		boundedLoad   = fs.Float64("bounded-load", 0, "bounded-load placement factor (default 1.25)")
		warmThreshold = fs.Int("warm-threshold", 0, "cache-hit solves before replica warming (default 3; negative: off)")
		probeInterval = fs.Duration("probe-interval", 0, "per-peer health-probe period (default 1s)")
		name          = fs.String("name", "", "router name in the loop-guard header (default fsaid-router)")
		logLevel      = fs.String("log-level", "info", "structured-log level: debug|info|warn|error")
		logFormat     = fs.String("log-format", "text", "structured-log format: text|json")
		traceHistory  = fs.Int("trace-history", 256, "finished routing traces kept for /traces")
	)
	_ = fs.Parse(args)

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsaid route: %v\n", err)
		os.Exit(2)
	}
	var addrs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			addrs = append(addrs, p)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "fsaid route: -peers is required (comma-separated shard addresses)")
		os.Exit(2)
	}

	metrics := telemetry.NewRegistry()
	stopRuntime := telemetry.StartRuntimeMetrics(metrics, 0)
	defer stopRuntime()
	recorder := trace.NewRecorder(*traceHistory, "", metrics)

	ring := cluster.NewRing(*vnodes)
	members := cluster.NewMembership(addrs, ring, cluster.MembershipOptions{
		ProbeInterval: *probeInterval,
		Logger:        logger,
		Registry:      metrics,
	})
	router := cluster.NewRouter(cluster.RouterOptions{
		Name:          *name,
		Replicas:      *replicas,
		BoundedLoad:   *boundedLoad,
		WarmThreshold: *warmThreshold,
		Membership:    members,
		Ring:          ring,
		Logger:        logger,
		Registry:      metrics,
		Traces:        recorder,
	})
	addr, err := router.Start(*listen)
	if err != nil {
		fatal("listen: %v", err)
	}
	logger.Info("fsaid router listening",
		"addr", "http://"+addr.String(), "peers", strings.Join(addrs, ","))

	sigCtx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	<-sigCtx.Done()
	stopSignals()

	logger.Info("router shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "error", err.Error())
		os.Exit(1)
	}
}

// newLogger builds the daemon's slog logger on stderr from the -log-level /
// -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// clientContext is the interrupt-aware context for the client subcommands.
func clientContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdRegister(args []string) {
	fs := flag.NewFlagSet("fsaid register", flag.ExitOnError)
	var (
		addr   = fs.String("addr", "http://127.0.0.1:7474", "daemon address")
		matgen = fs.String("matgen", "", "register a generator-suite matrix by spec name")
		file   = fs.String("file", "", "upload a MatrixMarket file")
		name   = fs.String("name", "", "optional registry alias")
	)
	_ = fs.Parse(args)
	if (*matgen == "") == (*file == "") {
		fmt.Fprintln(os.Stderr, "fsaid register: need exactly one of -matgen or -file")
		os.Exit(2)
	}
	ctx, cancel := clientContext()
	defer cancel()
	c := client.New(*addr)
	var (
		info service.MatrixInfo
		err  error
	)
	if *matgen != "" {
		info, err = c.RegisterMatgen(ctx, *matgen, *name)
	} else {
		var f *os.File
		if f, err = os.Open(*file); err == nil {
			info, err = c.RegisterMatrixMarket(ctx, f, *name)
			f.Close()
		}
	}
	if err != nil {
		fatal("register: %v", err)
	}
	verb := "registered"
	if !info.Created {
		verb = "already registered"
	}
	fmt.Printf("%s %s (%d unknowns, %d nonzeros) fingerprint=%s\n",
		verb, displayName(info), info.Rows, info.NNZ, info.Fingerprint)
}

func displayName(info service.MatrixInfo) string {
	if info.Name != "" {
		return info.Name
	}
	return info.Fingerprint[:12]
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("fsaid solve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:7474", "daemon address")
		matrix    = fs.String("matrix", "", "registered matrix (fingerprint or alias)")
		precond   = fs.String("precond", "fsaie", "preconditioner: none|jacobi|fsai|fsaie-sp|fsaie|adaptive")
		filter    = fs.Float64("filter", 0.01, "FSAIE filter threshold (negative: no filtering)")
		line      = fs.Int("line", 64, "cache line size in bytes")
		power     = fs.Int("power", 1, "initial pattern power N of Ã^N")
		tau       = fs.Float64("tau", 0, "threshold for Ã")
		tol       = fs.Float64("tol", 1e-8, "PCG relative residual tolerance")
		maxIter   = fs.Int("maxiter", 10000, "PCG iteration cap")
		resilient = fs.Bool("resilient", false, "solve through the adaptive recovery chain")
		timeout   = fs.Duration("timeout", 0, "job deadline (0: server default)")
		retries   = fs.Int("retries", 1, "attempts on 429/503/transport errors (1: no retry)")
		deadline  = fs.Duration("deadline", 0, "overall client budget across attempts (0: none); exits 3 on expiry")
	)
	_ = fs.Parse(args)
	if *matrix == "" {
		fmt.Fprintln(os.Stderr, "fsaid solve: -matrix is required")
		os.Exit(2)
	}
	ctx, cancel := clientContext()
	defer cancel()
	if *deadline > 0 {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, *deadline)
		defer dcancel()
	}
	pol := client.DefaultRetryPolicy(*retries)
	pol.OnRetry = func(attempt int, err error, delay time.Duration) {
		fmt.Fprintf(os.Stderr, "fsaid: attempt %d failed (%v); retrying in %s\n", attempt, err, delay.Round(time.Millisecond))
	}
	resp, tc, st, err := client.New(*addr).SolveTracedRetry(ctx, service.SolveRequest{
		Matrix:       *matrix,
		Precond:      *precond,
		Filter:       *filter,
		LineBytes:    *line,
		PatternPower: *power,
		Tau:          *tau,
		Tol:          *tol,
		MaxIter:      *maxIter,
		Resilient:    *resilient,
		TimeoutMS:    timeout.Milliseconds(),
	}, trace.Context{}, pol)
	if err != nil {
		// Deadline outcomes exit 3 (a cancellation, like non-convergence),
		// whether the budget died client-side or the server reported the
		// expiry for a queued job (504).
		if deadlineOutcome(err) {
			fmt.Fprintf(os.Stderr, "fsaid: trace=%s attempts=%d\n", tc.TraceID, st.Attempts)
			fmt.Fprintf(os.Stderr, "fsaid: deadline exceeded after %d attempt(s): %v\n", st.Attempts, err)
			os.Exit(3)
		}
		// Surface the identifiers the daemon knows this request by, so a
		// rejected or timed-out submission is still diagnosable: the body's
		// server-assigned ids when a response arrived (429, 5xx), otherwise
		// the client-originated trace id the daemon continues logging under.
		jobID, traceID := "", tc.TraceID
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			jobID, traceID = apiErr.Body.JobID, apiErr.Body.TraceID
			if traceID == "" {
				traceID = tc.TraceID
			}
		}
		if jobID != "" {
			fmt.Fprintf(os.Stderr, "fsaid: job=%s trace=%s attempts=%d\n", jobID, traceID, st.Attempts)
		} else {
			fmt.Fprintf(os.Stderr, "fsaid: trace=%s attempts=%d\n", traceID, st.Attempts)
		}
		if apiErr != nil && apiErr.RetryAfter > 0 {
			fatal("%v (retry after %s)", err, apiErr.RetryAfter)
		}
		fatal("solve: %v", err)
	}
	fmt.Printf("job=%s trace=%s precond=%s cache=%s queue_wait=%.1fms setup=%.1fms solve=%.1fms iterations=%d converged=%v relres=%.2e attempts=%d\n",
		resp.JobID, resp.TraceID, resp.Precond, resp.Cache,
		msec(resp.QueueWaitNS), msec(resp.SetupNS), msec(resp.SolveNS),
		resp.Iterations, resp.Converged, resp.RelRes, st.Attempts)
	if resp.Replayed {
		fmt.Println("replayed: result served from the original attempt (idempotency key matched)")
	}
	if resp.Report != "" {
		fmt.Printf("report: /runs/%s\n", resp.Report)
	}
	if resp.IterAnomaly {
		fmt.Fprintln(os.Stderr, "fsaid: warning: warm solve needed far more iterations than this matrix's baseline")
	}
	if resp.LowBandwidth {
		fmt.Fprintln(os.Stderr, "fsaid: warning: achieved SpMV bandwidth fell >30% below this matrix's baseline (see /roofline)")
	}
	if !resp.Converged {
		fmt.Fprintf(os.Stderr, "fsaid: solve did not converge (status: %s)\n", resp.Status)
		os.Exit(3)
	}
}

// deadlineOutcome reports whether a solve error means a deadline expired —
// the client budget died locally, or the server answered 504 for a job whose
// propagated deadline expired while queued.
func deadlineOutcome(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGatewayTimeout
}

// parseSize parses a byte size like "512MiB", "2GiB", "64MB" or a plain
// byte count. Empty means 0 (disabled).
func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	suffixes := []struct {
		suffix string
		mult   uint64
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3}, {"B", 1},
	}
	mult := uint64(1)
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.suffix) {
			mult = sf.mult
			s = strings.TrimSpace(strings.TrimSuffix(s, sf.suffix))
			break
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 512MiB, 2GiB or a byte count)", s)
	}
	return n * mult, nil
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("fsaid stats", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7474", "daemon address")
	_ = fs.Parse(args)
	ctx, cancel := clientContext()
	defer cancel()
	st, err := client.New(*addr).Stats(ctx)
	if err != nil {
		fatal("stats: %v", err)
	}
	fmt.Printf("matrices: %d\n", st.Matrices)
	fmt.Printf("cache:    %d/%d entries, %d hits, %d misses, %d evictions\n",
		st.Cache.Entries, st.Cache.Capacity, st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
	fmt.Printf("queue:    %d/%d waiting, %d/%d inflight, %d accepted, %d rejected, %d completed\n",
		st.Queue.Depth, st.Queue.Capacity, st.Queue.Inflight, st.Queue.MaxInflight,
		st.Queue.Accepted, st.Queue.Rejected, st.Queue.Completed)
}

func cmdJobs(args []string) {
	fs := flag.NewFlagSet("fsaid jobs", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7474", "daemon address")
	_ = fs.Parse(args)
	ctx, cancel := clientContext()
	defer cancel()
	jobs, err := client.New(*addr).Jobs(ctx)
	if err != nil {
		fatal("jobs: %v", err)
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return
	}
	for _, j := range jobs {
		extra := ""
		switch {
		case j.Err != "":
			extra = " error=" + j.Err
		case j.State == service.JobDone:
			extra = fmt.Sprintf(" cache=%s iters=%d status=%s total=%.1fms",
				j.Cache, j.Iterations, j.Status, msec(j.TotalNS))
		}
		fmt.Printf("%-10s %-8s precond=%-8s matrix=%s%s\n",
			j.ID, j.State, j.Precond, shortRef(j.Matrix), extra)
	}
}

func shortRef(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func msec(ns int64) float64 { return float64(ns) / 1e6 }
