package main

import "testing"

func TestParseList(t *testing.T) {
	got, err := parseList("1, 3,5")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := parseList(""); err != nil || got != nil {
		t.Errorf("empty list: %v %v", got, err)
	}
	if _, err := parseList("1,x"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestContains(t *testing.T) {
	if !contains([]int{1, 2, 3}, 2) || contains([]int{1, 3}, 2) || contains(nil, 0) {
		t.Error("contains wrong")
	}
}
