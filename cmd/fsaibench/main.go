// Command fsaibench runs the paper's evaluation campaign and regenerates
// its tables and figures.
//
// Usage:
//
//	fsaibench [flags]
//
//	-table N       print table N (1,2,3,4,5); repeatable as comma list
//	-figure N      print figure N (2,3,4,5,6,7); repeatable as comma list
//	-all           print every table and figure
//	-quick         use the 10-matrix quick suite instead of the full 72
//	-arch NAME     restrict to one machine (Skylake, POWER9, A64FX)
//	-ablation LIST run ablations: align,linesize,power,precond,order,adaptive,roofline,spectrum,fem,fig3 or all
//	-matrix NAME   suite matrix for single-matrix ablations
//	-nrhs K        multi-RHS amortization campaign: solve -matrix (or the
//	               quick suite with -quick) for K right-hand sides, as K
//	               scalar solves and as one K-column block solve, and print
//	               the per-RHS wall times, amortization factor, and whether
//	               the block columns reproduced the scalar solutions
//	               bitwise; with -metrics-out, writes a run report whose
//	               entries carry nrhs and whose op counters are split by
//	               kernel class (spmv/spmm/blas1)
//	-json PREFIX   also write per-machine results as <prefix>-<machine>.json
//	-host          also print the measured host wall-clock table
//	-v             progress output while the campaign runs
//	-trace         stream per-setup phase span trees to stderr
//	-metrics-out F write a versioned machine-readable run report (JSON) to F:
//	               per-phase setup spans, per-iteration residual histories,
//	               SpMV/precond/BLAS-1 timing histograms, SpMV op counters,
//	               per-entry cache-miss attribution
//	-listen ADDR   serve the live observability endpoints (/metrics,
//	               /debug/solve, /debug/pprof/) while the campaign runs
//	-pprof ADDR    serve net/http/pprof on ADDR (e.g. localhost:6060)
//	-timeout D     overall campaign wall-clock budget (e.g. 10m); on expiry
//	               the running solve stops cooperatively and the tool exits
//	               with an error instead of publishing partial tables
//
// Tables 1-3 and Figures 2-4 are Skylake artifacts; Table 4/Figure 5 are
// POWER9; Table 5/Figure 6 are A64FX; Figure 7 spans all three. The tool
// runs the minimal set of raw campaigns the requested artifacts need (the
// 64-byte raw run is shared by Skylake and POWER9).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

func main() {
	var (
		tablesFlag  = flag.String("table", "", "comma-separated table numbers (1-5)")
		figuresFlag = flag.String("figure", "", "comma-separated figure numbers (2-7)")
		allFlag     = flag.Bool("all", false, "print every table and figure")
		quickFlag   = flag.Bool("quick", false, "use the quick 10-matrix suite")
		archFlag    = flag.String("arch", "", "restrict to one machine (Skylake, POWER9, A64FX)")
		ablations   = flag.String("ablation", "", "comma-separated ablations: align,linesize,power,precond,order,adaptive,roofline,spectrum,fem,fig3 or all")
		matrixFlag  = flag.String("matrix", "jump64x64-b8-j1e3", "suite matrix for single-matrix ablations")
		nrhsFlag    = flag.Int("nrhs", 0, "multi-RHS amortization campaign with this many right-hand sides (>= 2)")
		jsonPrefix  = flag.String("json", "", "write per-machine campaign results as <prefix>-<machine>.json")
		hostTable   = flag.Bool("host", false, "also print measured host wall-clock FSAI vs FSAIE table")
		verbose     = flag.Bool("v", false, "progress output")
		traceFlag   = flag.Bool("trace", false, "stream per-setup phase span trees to stderr")
		metricsOut  = flag.String("metrics-out", "", "write a machine-readable run report (JSON) to this file")
		listenAddr  = flag.String("listen", "", "serve observability endpoints on this address while the campaign runs")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		timeout     = flag.Duration("timeout", 0, "overall campaign wall-clock budget (0: none)")
	)
	flag.Parse()
	var need64Host bool

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "fsaibench: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	tables, err := parseList(*tablesFlag)
	if err != nil {
		fatal("bad -table: %v", err)
	}
	figures, err := parseList(*figuresFlag)
	if err != nil {
		fatal("bad -figure: %v", err)
	}
	if *allFlag {
		tables = []int{1, 2, 3, 4, 5}
		figures = []int{2, 3, 4, 5, 6, 7}
	}
	if *hostTable {
		need64Host = true
	}
	if len(tables) == 0 && len(figures) == 0 && *ablations == "" && !*hostTable &&
		*metricsOut == "" && *nrhsFlag == 0 {
		flag.Usage()
		os.Exit(2)
	}

	specs := matgen.Suite()
	if *quickFlag {
		specs = matgen.QuickSuite()
	}

	if *nrhsFlag != 0 {
		if *nrhsFlag < 2 {
			fatal("-nrhs must be >= 2, got %d", *nrhsFlag)
		}
		runMultiRHS(*nrhsFlag, *matrixFlag, *quickFlag, *metricsOut, *verbose, *timeout)
		return
	}

	if *ablations != "" {
		runAblations(*ablations, *matrixFlag, specs)
	}

	want := func(name string) bool { return *archFlag == "" || *archFlag == name }
	need64 := need64Host
	need256 := false
	needRandom := contains(figures, 3) || contains(figures, 4)
	needStandard := contains(tables, 3)
	for _, tb := range tables {
		switch tb {
		case 1, 2, 3:
			need64 = need64 || want("Skylake")
		case 4:
			need64 = need64 || want("POWER9")
		case 5:
			need256 = need256 || want("A64FX")
		default:
			fatal("unknown table %d", tb)
		}
	}
	for _, fg := range figures {
		switch fg {
		case 2, 3, 4:
			need64 = need64 || want("Skylake")
		case 5:
			need64 = need64 || want("POWER9")
		case 6:
			need256 = need256 || want("A64FX")
		case 7:
			need64 = need64 || want("Skylake") || want("POWER9")
			need256 = need256 || want("A64FX")
		default:
			fatal("unknown figure %d", fg)
		}
	}

	// A run report needs a campaign even when no table or figure was asked
	// for; it follows the -arch selection (A64FX reports the 256-byte run).
	reportMachine := "Skylake"
	if *metricsOut != "" {
		if *archFlag == "A64FX" {
			need256 = true
			reportMachine = "A64FX"
		} else {
			need64 = true
			if *archFlag == "POWER9" {
				reportMachine = "POWER9"
			}
		}
	}

	var metrics *telemetry.Registry
	var tracer *telemetry.Tracer
	if *metricsOut != "" || *listenAddr != "" {
		metrics = telemetry.NewRegistry()
		sparse.EnableOpCounters(true)
	}
	if *traceFlag {
		tracer = telemetry.NewTracer(os.Stderr)
	}

	var watcher *obs.SolveWatcher
	if *listenAddr != "" {
		watcher = obs.NewSolveWatcher()
		srv := obs.NewServer(obs.Options{Registry: metrics, Watcher: watcher})
		addr, err := srv.Start(*listenAddr)
		if err != nil {
			fatal("listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "observability server listening on http://%s\n", addr)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}
	run := func(m arch.Arch) *experiments.RawCampaign {
		opts := experiments.RawOptions{
			Ctx:                ctx,
			L1:                 m.L1Sim,
			WithRandom:         needRandom,
			WithStandard:       needStandard,
			RecordHistory:      *metricsOut != "",
			CollectTiming:      *metricsOut != "" || *listenAddr != "",
			Metrics:            metrics,
			CollectCacheAttrib: *metricsOut != "",
			Tracer:             tracer,
		}
		if watcher != nil {
			opts.ProgressDetail = watcher.ProgressDetail
		}
		if progress != nil {
			opts.Progress = progress
			fmt.Fprintf(progress, "== raw campaign: %d-byte lines, %d matrices ==\n", m.LineBytes, len(specs))
		}
		raw, err := experiments.RunRaw(specs, opts)
		if err != nil {
			fatal("campaign failed: %v", err)
		}
		return raw
	}

	var sky, p9, a64 *experiments.PricedCampaign
	var raw64, raw256 *experiments.RawCampaign
	if need64 {
		raw := run(arch.Skylake())
		raw64 = raw
		if want("Skylake") {
			sky = experiments.Price(raw, arch.Skylake())
		}
		if want("POWER9") {
			p9 = experiments.Price(raw, arch.POWER9())
		}
	}
	if need256 {
		raw256 = run(arch.A64FX())
		if want("A64FX") {
			a64 = experiments.Price(raw256, arch.A64FX())
		}
	}

	if *metricsOut != "" {
		rawReport := raw64
		if reportMachine == "A64FX" {
			rawReport = raw256
		}
		rep := experiments.BuildRunReport(rawReport, "fsaibench", reportMachine, metrics)
		// Atomic write: a mid-run failure must never truncate an existing
		// report on disk.
		if err := experiments.WriteRunReportFile(*metricsOut, rep); err != nil {
			fatal("metrics-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote run report (%d entries) to %s\n", len(rep.Entries), *metricsOut)
	}

	if *jsonPrefix != "" {
		for _, c := range []*experiments.PricedCampaign{sky, p9, a64} {
			if c == nil {
				continue
			}
			path := fmt.Sprintf("%s-%s.json", *jsonPrefix, strings.ToLower(c.Machine.Name))
			f, err := os.Create(path)
			if err != nil {
				fatal("json: %v", err)
			}
			if err := c.WriteJSON(f); err != nil {
				f.Close()
				fatal("json: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("json: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	out := os.Stdout
	if *hostTable && raw64 != nil {
		fmt.Fprintln(out, experiments.HostWallClockTable(raw64))
	}
	for _, tb := range tables {
		switch {
		case tb == 1 && sky != nil:
			fmt.Fprintln(out, sky.Table1())
		case tb == 2 && sky != nil:
			fmt.Fprintln(out, sky.SummaryTable())
		case tb == 3 && sky != nil:
			fmt.Fprintln(out, sky.Table3())
		case tb == 4 && p9 != nil:
			fmt.Fprintln(out, p9.SummaryTable())
		case tb == 5 && a64 != nil:
			fmt.Fprintln(out, a64.SummaryTable())
		}
	}
	for _, fg := range figures {
		switch {
		case fg == 2 && sky != nil:
			fmt.Fprintln(out, sky.FigureTimeDecrease())
		case fg == 3 && sky != nil:
			fmt.Fprintln(out, sky.Figure3())
		case fg == 4 && sky != nil:
			fmt.Fprintln(out, sky.Figure4())
		case fg == 5 && p9 != nil:
			fmt.Fprintln(out, p9.FigureTimeDecrease())
		case fg == 6 && a64 != nil:
			fmt.Fprintln(out, a64.FigureTimeDecrease())
		case fg == 7:
			var cs []*experiments.PricedCampaign
			for _, c := range []*experiments.PricedCampaign{sky, p9, a64} {
				if c != nil {
					cs = append(cs, c)
				}
			}
			fmt.Fprintln(out, experiments.Figure7(cs))
		}
	}
}

// runMultiRHS runs the -nrhs amortization campaign: the named suite matrix
// (or the quick suite with -quick), each solved for k right-hand sides as k
// scalar solves and as one k-column block solve. The op counters run for
// the whole campaign so the report's op_classes section attributes the
// work to spmv/spmm/blas1.
func runMultiRHS(k int, matrixName string, quick bool, metricsOut string, verbose bool, timeout time.Duration) {
	var specs []matgen.Spec
	if quick {
		specs = matgen.QuickSuite()
	} else {
		spec, ok := matgen.ByName(matrixName)
		if !ok {
			fatal("unknown -matrix %q", matrixName)
		}
		specs = []matgen.Spec{spec}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	reg := telemetry.NewRegistry()
	sparse.EnableOpCounters(true)
	sparse.ResetOpCounters()
	defer sparse.EnableOpCounters(false)

	opt := experiments.MultiRHSOptions{
		Workers: parallel.MaxWorkers(), Metrics: reg, Ctx: ctx,
	}
	var results []*experiments.MultiRHSResult
	for _, spec := range specs {
		if verbose {
			fmt.Fprintf(os.Stderr, "== multi-RHS: %s, k=%d ==\n", spec.Name, k)
		}
		r, err := experiments.RunMultiRHS(spec, k, opt)
		if err != nil {
			fatal("%v", err)
		}
		results = append(results, r)
	}
	fmt.Print(experiments.MultiRHSTable(results))

	if metricsOut != "" {
		rep := experiments.MultiRHSReport(results, "fsaibench", "host", reg)
		if err := experiments.WriteRunReportFile(metricsOut, rep); err != nil {
			fatal("metrics-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote run report (%d entries) to %s\n", len(rep.Entries), metricsOut)
	}
}

func runAblations(list, matrixName string, specs []matgen.Spec) {
	spec, ok := matgen.ByName(matrixName)
	if !ok {
		fatal("unknown -matrix %q", matrixName)
	}
	names := strings.Split(list, ",")
	if list == "all" {
		names = []string{"align", "linesize", "power", "precond", "order", "adaptive", "roofline", "spectrum", "fem", "fig3"}
	}
	// The multi-matrix ablations use a capped subset to stay interactive.
	sub := specs
	if len(sub) > 10 {
		sub = matgen.QuickSuite()
	}
	for _, name := range names {
		var out string
		var err error
		switch strings.TrimSpace(name) {
		case "align":
			out, err = experiments.AblationAlignment(spec)
		case "linesize":
			out, err = experiments.AblationLineSize(spec)
		case "power":
			out, err = experiments.AblationPatternPower(spec)
		case "precond":
			out, err = experiments.AblationPreconditioners(sub)
		case "order":
			out, err = experiments.AblationOrdering(spec)
		case "adaptive":
			out, err = experiments.AblationAdaptive(spec)
		case "roofline":
			out, err = experiments.AblationRoofline(spec)
		case "spectrum":
			out, err = experiments.AblationSpectrum(spec)
		case "fem":
			out, err = experiments.AblationFEM()
		case "fig3":
			out, err = experiments.AblationFigure3Histogram(sub)
		default:
			fatal("unknown ablation %q", name)
		}
		if err != nil {
			fatal("ablation %s: %v", name, err)
		}
		fmt.Println(out)
	}
}

func parseList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsaibench: "+format+"\n", args...)
	os.Exit(1)
}
