package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func baseReport() *experiments.RunReport {
	return &experiments.RunReport{
		Tool: "fsaisolve",
		Entries: []experiments.RunEntry{
			{
				Matrix: "lap2d", Variant: "FSAIE(full)", Filter: 0.01,
				Iterations: 100, Converged: true, NNZG: 5000,
				SetupWallNS: 1_000_000, SolveWallNS: 2_000_000,
				Cache: &experiments.RunCacheAttrib{
					LineBytes: 64, BlockRows: 4,
					SimMissPerNNZ: 0.5,
					Sweeps: []experiments.RunCacheSweep{
						{Phase: "G", BaseMisses: 1000, FillMisses: 10},
						{Phase: "GT", BaseMisses: 1200, FillMisses: 12},
					},
				},
			},
			{
				Matrix: "lap2d", Variant: "FSAI", Filter: 0,
				Iterations: 140, Converged: true, NNZG: 4000,
			},
		},
	}
}

func writeReport(t *testing.T, dir, name string, r *experiments.RunReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := experiments.WriteRunReportFile(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCompare invokes compare() directly, capturing stdout.
func runCompare(t *testing.T, oldR, newR *experiments.RunReport, tolPct float64, wall bool) (int, string) {
	t.Helper()
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", oldR)
	newPath := writeReport(t, dir, "new.json", newR)
	o, err := experiments.ReadRunReportFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := experiments.ReadRunReportFile(newPath)
	if err != nil {
		t.Fatal(err)
	}

	orig := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	regressions := compare(o, n, tolPct, wall, false)
	w.Close()
	os.Stdout = orig
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, r)
	return regressions, buf.String()
}

func TestIdenticalReportsPass(t *testing.T) {
	regs, out := runCompare(t, baseReport(), baseReport(), 10, true)
	if regs != 0 {
		t.Fatalf("identical reports flagged %d regressions:\n%s", regs, out)
	}
}

func TestInjectedRegressionFlagged(t *testing.T) {
	// The acceptance criterion: a >=10% injected regression must be caught
	// at the default 10% tolerance.
	newR := baseReport()
	newR.Entries[0].Iterations = 111 // +11%
	regs, out := runCompare(t, baseReport(), newR, 10, false)
	if regs == 0 {
		t.Fatalf("11%% iteration regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "iterations") {
		t.Errorf("output does not name the regressed metric:\n%s", out)
	}
}

func TestWithinToleranceGrowthPasses(t *testing.T) {
	newR := baseReport()
	newR.Entries[0].Iterations = 105 // +5% < 10%
	if regs, out := runCompare(t, baseReport(), newR, 10, false); regs != 0 {
		t.Fatalf("5%% growth flagged at 10%% tolerance:\n%s", out)
	}
	// ... but a tighter tolerance catches it.
	if regs, _ := runCompare(t, baseReport(), newR, 2, false); regs == 0 {
		t.Fatal("5% growth not flagged at 2% tolerance")
	}
}

func TestCacheMissRegressionFlagged(t *testing.T) {
	newR := baseReport()
	newR.Entries[0].Cache.SimMissPerNNZ = 0.62 // +24%
	regs, out := runCompare(t, baseReport(), newR, 10, false)
	if regs == 0 || !strings.Contains(out, "sim_miss_per_nnz") {
		t.Fatalf("cache miss regression not flagged (%d):\n%s", regs, out)
	}
}

func TestMissingEntryIsRegression(t *testing.T) {
	newR := baseReport()
	newR.Entries = newR.Entries[:1] // drop the FSAI entry
	regs, out := runCompare(t, baseReport(), newR, 10, false)
	if regs == 0 || !strings.Contains(out, "missing") {
		t.Fatalf("dropped entry not flagged (%d):\n%s", regs, out)
	}
}

func TestConvergenceLossIsRegression(t *testing.T) {
	newR := baseReport()
	// Fewer iterations because the solve gave up — must still fail.
	newR.Entries[0].Converged = false
	newR.Entries[0].Iterations = 50
	regs, out := runCompare(t, baseReport(), newR, 10, false)
	if regs == 0 || !strings.Contains(out, "converge") {
		t.Fatalf("convergence loss not flagged (%d):\n%s", regs, out)
	}
}

func TestImprovementsPass(t *testing.T) {
	newR := baseReport()
	newR.Entries[0].Iterations = 50 // big improvement
	newR.Entries[0].Cache.SimMissPerNNZ = 0.1
	if regs, out := runCompare(t, baseReport(), newR, 10, true); regs != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", out)
	}
}

func TestWallMetricsGatedByFlag(t *testing.T) {
	newR := baseReport()
	newR.Entries[0].SolveWallNS = 10_000_000 // 5x slower
	if regs, _ := runCompare(t, baseReport(), newR, 10, false); regs != 0 {
		t.Fatal("wall metric compared without -wall")
	}
	if regs, _ := runCompare(t, baseReport(), newR, 10, true); regs == 0 {
		t.Fatal("wall regression not flagged with -wall")
	}
}

func TestV1BaselineComparable(t *testing.T) {
	// A schema v1 baseline (no cache sections) must compare cleanly against
	// a v2 candidate: cache metrics are skipped, not treated as regressions.
	v1 := `{
  "schema_version": 1,
  "tool": "fsaisolve",
  "entries": [
    {"matrix": "lap2d", "variant": "FSAIE(full)", "filter": 0.01,
     "iterations": 100, "converged": true, "nnz_g": 5000,
     "setup_wall_ns": 1, "solve_wall_ns": 2}
  ]
}`
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "v1.json")
	if err := os.WriteFile(oldPath, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := experiments.ReadRunReportFile(oldPath)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	n := baseReport()
	n.Entries = n.Entries[:1]

	orig := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	regs := compare(o, n, 10, false, false)
	w.Close()
	os.Stdout = orig
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, r)
	if regs != 0 {
		t.Fatalf("v1 vs v2 comparison flagged %d regressions:\n%s", regs, buf.String())
	}
}

func TestGrowthPct(t *testing.T) {
	cases := []struct {
		oldV, newV, want float64
	}{
		{100, 110, 10},
		{100, 90, -10},
		{0, 0, 0},
		{0, 5, 100},
	}
	for _, c := range cases {
		if got := growthPct(c.oldV, c.newV); got != c.want {
			t.Errorf("growthPct(%g, %g) = %g, want %g", c.oldV, c.newV, got, c.want)
		}
	}
}
