// Command fsaicompare diffs two run reports and flags metric regressions —
// the CI perf-regression gate. It matches entries between an old (baseline)
// and a new (candidate) report by (matrix, variant, filter) and compares the
// deterministic quality metrics: PCG iteration counts, factor sizes, and the
// simulated cache-miss counts that the paper's claims rest on. Wall-clock
// metrics are noisy on shared runners and are only compared with -wall.
//
// Usage:
//
//	fsaicompare [flags] OLD.json NEW.json
//
//	-tol PCT    regression tolerance in percent (default 10): a metric may
//	            grow by up to PCT% before it is flagged
//	-wall       also compare wall-clock metrics (setup/solve nanoseconds)
//	-v          print every comparison, not just regressions
//	-record F   append the candidate's headline numbers (wall times,
//	            iterations, achieved SpMV GB/s, and for multi-RHS entries
//	            the block width and amortized per-RHS wall time) to the
//	            JSON history file F
//	            (conventionally BENCH_history.json), so perf trends survive
//	            individual CI runs. Recording happens before the exit code
//	            is decided — regressed runs land in the history too.
//
// Exit status: 0 when no regression is found, 1 when at least one metric
// regressed beyond tolerance (or an entry disappeared, or a previously
// converging solve stopped converging), 2 on usage or I/O errors. Schema v1
// baselines are upgraded on read, so old committed artifacts keep working.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/roofline"
)

// metric is one comparable quantity of a run entry. Lower is better for
// every metric this tool compares.
type metric struct {
	name string
	// wall marks host wall-clock metrics, skipped unless -wall.
	wall bool
	get  func(e *experiments.RunEntry) (float64, bool)
}

var metrics = []metric{
	{name: "iterations", get: func(e *experiments.RunEntry) (float64, bool) {
		return float64(e.Iterations), e.Iterations > 0
	}},
	{name: "nnz_g", get: func(e *experiments.RunEntry) (float64, bool) {
		return float64(e.NNZG), e.NNZG > 0
	}},
	{name: "sim_miss_per_nnz", get: func(e *experiments.RunEntry) (float64, bool) {
		if e.Cache == nil {
			return 0, false
		}
		return e.Cache.SimMissPerNNZ, true
	}},
	{name: "cache_misses", get: func(e *experiments.RunEntry) (float64, bool) {
		if e.Cache == nil {
			return 0, false
		}
		var total uint64
		for _, s := range e.Cache.Sweeps {
			total += s.BaseMisses + s.FillMisses
		}
		return float64(total), true
	}},
	{name: "setup_wall_ns", wall: true, get: func(e *experiments.RunEntry) (float64, bool) {
		return float64(e.SetupWallNS), e.SetupWallNS > 0
	}},
	{name: "solve_wall_ns", wall: true, get: func(e *experiments.RunEntry) (float64, bool) {
		return float64(e.SolveWallNS), e.SolveWallNS > 0
	}},
	{name: "per_rhs_wall_ns", wall: true, get: func(e *experiments.RunEntry) (float64, bool) {
		// Only multi-RHS entries (schema v7 nrhs > 1) carry the amortized
		// per-RHS metric; single-RHS entries are gated by solve_wall_ns.
		if e.NRHS < 2 || e.SolveWallNS <= 0 {
			return 0, false
		}
		return float64(e.SolveWallNS) / float64(e.NRHS), true
	}},
}

// entryKey identifies a measurement across reports.
type entryKey struct {
	Matrix  string
	Variant string
	Filter  float64
}

func keyOf(e *experiments.RunEntry) entryKey {
	return entryKey{Matrix: e.Matrix, Variant: e.Variant, Filter: e.Filter}
}

func (k entryKey) String() string {
	return fmt.Sprintf("%s/%s(filter=%g)", k.Matrix, k.Variant, k.Filter)
}

func main() {
	var (
		tolPct  = flag.Float64("tol", 10, "regression tolerance in percent")
		wall    = flag.Bool("wall", false, "also compare wall-clock metrics")
		verbose = flag.Bool("v", false, "print every comparison, not just regressions")
		record  = flag.String("record", "", "append the candidate's headline numbers to this JSON history file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fsaicompare [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *tolPct < 0 {
		fmt.Fprintln(os.Stderr, "fsaicompare: -tol must be >= 0")
		os.Exit(2)
	}

	oldRep, err := experiments.ReadRunReportFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	newRep, err := experiments.ReadRunReportFile(flag.Arg(1))
	if err != nil {
		fatal("%v", err)
	}

	regressions := compare(oldRep, newRep, *tolPct, *wall, *verbose)
	if *record != "" {
		if err := appendHistory(*record, flag.Arg(1), newRep, regressions); err != nil {
			fatal("record: %v", err)
		}
		fmt.Printf("recorded %d entr(y/ies) to %s\n", len(newRep.Entries), *record)
	}
	if regressions > 0 {
		fmt.Printf("FAIL: %d regression(s) beyond %.3g%% tolerance\n", regressions, *tolPct)
		os.Exit(1)
	}
	fmt.Printf("OK: no regressions beyond %.3g%% tolerance\n", *tolPct)
}

// compare walks the baseline's entries and counts regressions in the
// candidate. Printed output goes to stdout; the count is the exit signal.
func compare(oldRep, newRep *experiments.RunReport, tolPct float64, wall, verbose bool) int {
	newByKey := map[entryKey]*experiments.RunEntry{}
	for i := range newRep.Entries {
		e := &newRep.Entries[i]
		newByKey[keyOf(e)] = e
	}

	var regressions, compared int
	for i := range oldRep.Entries {
		oe := &oldRep.Entries[i]
		key := keyOf(oe)
		ne, ok := newByKey[key]
		if !ok {
			fmt.Printf("REGRESSION %s: entry missing from new report\n", key)
			regressions++
			continue
		}
		if oe.Converged && !ne.Converged {
			fmt.Printf("REGRESSION %s: solve no longer converges (was %d iterations)\n", key, oe.Iterations)
			regressions++
		}
		for _, m := range metrics {
			if m.wall && !wall {
				continue
			}
			ov, ook := m.get(oe)
			nv, nok := m.get(ne)
			if !ook || !nok {
				// Not measured on both sides (e.g. a v1 baseline has no
				// cache section) — nothing to compare.
				continue
			}
			compared++
			growth := growthPct(ov, nv)
			switch {
			case growth > tolPct:
				fmt.Printf("REGRESSION %s: %s %.6g -> %.6g (%+.1f%% > %.3g%%)\n",
					key, m.name, ov, nv, growth, tolPct)
				regressions++
			case verbose:
				fmt.Printf("ok %s: %s %.6g -> %.6g (%+.1f%%)\n", key, m.name, ov, nv, growth)
			}
		}
	}
	fmt.Printf("compared %d metrics across %d baseline entries\n", compared, len(oldRep.Entries))
	return regressions
}

// growthPct returns the percent growth from old to new (positive = worse;
// every compared metric is lower-is-better). A zero baseline only regresses
// when the new value becomes nonzero.
func growthPct(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 100
	}
	return (newV - oldV) / oldV * 100
}

// historyRecord is one -record append: the candidate report's headline
// numbers plus when and from which file they were taken. The history file
// is a JSON array of these, oldest first.
type historyRecord struct {
	Time        string         `json:"time"`
	Report      string         `json:"report"`
	Tool        string         `json:"tool,omitempty"`
	Regressions int            `json:"regressions"`
	Entries     []historyEntry `json:"entries"`
}

// historyEntry is the headline row of one run entry.
type historyEntry struct {
	Matrix      string  `json:"matrix"`
	Variant     string  `json:"variant"`
	Filter      float64 `json:"filter"`
	Iterations  int     `json:"iterations"`
	Converged   bool    `json:"converged"`
	SetupWallNS int64   `json:"setup_wall_ns"`
	SolveWallNS int64   `json:"solve_wall_ns"`
	// NRHS is the entry's block width (absent for single-RHS entries);
	// PerRHSNS the amortized solve wall time per right-hand side, the
	// headline number of the multi-RHS campaign.
	NRHS     int   `json:"nrhs,omitempty"`
	PerRHSNS int64 `json:"per_rhs_ns,omitempty"`
	// SpMVGBs is the solve's achieved SpMV memory bandwidth in GB/s, from
	// the report's roofline section (0 when the report has none).
	SpMVGBs float64 `json:"spmv_gbs,omitempty"`
}

// appendHistory reads the history file (absent or empty: fresh array),
// appends one record for rep and writes the array back.
func appendHistory(path, reportPath string, rep *experiments.RunReport, regressions int) error {
	var hist []historyRecord
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("%s: existing history is not a JSON array: %v", path, err)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}

	rec := historyRecord{
		Time:        time.Now().UTC().Format(time.RFC3339),
		Report:      reportPath,
		Tool:        rep.Tool,
		Regressions: regressions,
	}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		he := historyEntry{
			Matrix:      e.Matrix,
			Variant:     e.Variant,
			Filter:      e.Filter,
			Iterations:  e.Iterations,
			Converged:   e.Converged,
			SetupWallNS: e.SetupWallNS,
			SolveWallNS: e.SolveWallNS,
		}
		if e.NRHS > 1 {
			he.NRHS = e.NRHS
			he.PerRHSNS = e.SolveWallNS / int64(e.NRHS)
		}
		if e.Roofline != nil {
			for _, k := range e.Roofline.Kernels {
				if k.Kernel == roofline.KernelSpMV {
					he.SpMVGBs = k.AchievedBandwidthBytes / 1e9
				}
			}
		}
		rec.Entries = append(rec.Entries, he)
	}
	hist = append(hist, rec)

	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fsaicompare: "+format+"\n", args...)
	os.Exit(2)
}
