// Command mmtool generates, inspects and converts the matrices of the
// evaluation suite in Matrix Market format.
//
// Usage:
//
//	mmtool list                      # list the 72 suite matrices
//	mmtool gen <name> <out.mtx>      # write a suite matrix to a file
//	mmtool info <file.mtx>           # print size/nnz/symmetry of a file
//	mmtool solve <file.mtx>          # PCG-solve a file with FSAI & FSAIE
package main

import (
	"fmt"
	"os"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/mmio"
	"repro/internal/sparse"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, s := range matgen.Suite() {
			a := s.Generate()
			fmt.Printf("%2d  %-22s %-20s %7d rows %9d nnz\n", s.ID, s.Name, s.Type, a.Rows, a.NNZ())
		}
	case "gen":
		if len(os.Args) != 4 {
			usage()
		}
		spec, ok := matgen.ByName(os.Args[2])
		if !ok {
			fatal("unknown suite matrix %q (try 'mmtool list')", os.Args[2])
		}
		a := spec.Generate()
		if err := mmio.WriteFile(os.Args[3], a, true); err != nil {
			fatal("write: %v", err)
		}
		fmt.Printf("wrote %s: %d x %d, %d nnz (symmetric coordinate)\n", os.Args[3], a.Rows, a.Cols, a.NNZ())
	case "info":
		if len(os.Args) != 3 {
			usage()
		}
		a := read(os.Args[2])
		fmt.Printf("%s: %d x %d, nnz=%d, symmetric=%v, maxnorm=%g\n",
			os.Args[2], a.Rows, a.Cols, a.NNZ(), a.IsSymmetric(1e-12), a.MaxNorm())
	case "solve":
		if len(os.Args) != 3 {
			usage()
		}
		a := read(os.Args[2])
		if a.Rows != a.Cols {
			fatal("matrix is not square")
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		kopt := krylov.DefaultOptions()
		for _, v := range []fsai.Variant{fsai.VariantFSAI, fsai.VariantSp, fsai.VariantFull} {
			o := fsai.DefaultOptions()
			o.Variant = v
			p, err := fsai.Compute(a, o)
			if err != nil {
				fatal("%v setup: %v", v, err)
			}
			res := krylov.Solve(a, x, b, p, kopt)
			fmt.Printf("%-12v iters=%5d converged=%-5v relres=%.2e nnz(G)=%d (+%.1f%%)\n",
				v, res.Iterations, res.Converged, res.RelResidual, p.NNZ(), p.ExtensionPct())
		}
	default:
		usage()
	}
}

func read(path string) *sparse.CSR {
	a, err := mmio.ReadFile(path)
	if err != nil {
		fatal("read: %v", err)
	}
	return a
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmtool list | gen <name> <out.mtx> | info <file.mtx> | solve <file.mtx>")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mmtool: "+format+"\n", args...)
	os.Exit(1)
}
