// Package fsaie is the public facade of the reproduction of "Cache-aware
// Sparse Patterns for the Factorized Sparse Approximate Inverse
// Preconditioner" (Laut, Borrell, Casas — HPDC 2021).
//
// It re-exports the pieces a solver integrator needs: sparse CSR matrices,
// the preconditioned Conjugate Gradient solver, and the FSAI preconditioner
// family with the paper's cache-aware pattern extensions:
//
//	a, _ := fsaie.FromTriplets(n, n, entries)     // or matgen generators
//	opts := fsaie.DefaultOptions()                // FSAIE(full), filter 0.01
//	opts.LineBytes = fsaie.DetectLineBytes()      // 64 on most machines
//	p, _ := fsaie.New(a, opts)
//	res := fsaie.Solve(a, x, b, p, fsaie.SolverDefaults())
//
// The deeper layers live in internal/: sparse kernels (internal/sparse),
// patterns (internal/pattern), the preconditioner core (internal/core), the
// CG/PCG solvers (internal/krylov), the cache simulator (internal/cachesim),
// machine models (internal/arch), the performance model
// (internal/perfmodel), matrix generators (internal/matgen), Matrix Market
// I/O (internal/mmio) and the paper's full evaluation campaign
// (internal/experiments, driven by cmd/fsaibench).
package fsaie

import (
	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/sparse"
)

// Matrix is a sparse matrix in CSR format (see internal/sparse).
type Matrix = sparse.CSR

// Triplet is one (row, col, value) coordinate entry.
type Triplet = sparse.Triplet

// Options configures the FSAI preconditioner construction.
type Options = fsai.Options

// Preconditioner is a computed FSAI factorization GᵀG ≈ A⁻¹; it plugs into
// Solve as the preconditioner.
type Preconditioner = fsai.Preconditioner

// Variant selects the preconditioner construction.
type Variant = fsai.Variant

// The preconditioner variants of the paper's evaluation.
const (
	// FSAI is the classical baseline (Algorithm 1).
	FSAI = fsai.VariantFSAI
	// FSAIESp extends the pattern one-sidedly for spatial locality of Gp
	// (Algorithm 4 without steps 5-6).
	FSAIESp = fsai.VariantSp
	// FSAIEFull extends both G and Gᵀ patterns (full Algorithm 4).
	FSAIEFull = fsai.VariantFull
)

// SolverOptions configures the (P)CG solver.
type SolverOptions = krylov.Options

// SolveResult reports a (P)CG solve outcome.
type SolveResult = krylov.Result

// FromTriplets builds an r×c CSR matrix from coordinate entries, summing
// duplicates.
func FromTriplets(r, c int, ts []Triplet) (*Matrix, error) {
	return sparse.NewCSRFromTriplets(r, c, ts)
}

// DefaultOptions returns the paper's evaluation configuration: FSAIE(full),
// filter 0.01, 64-byte cache lines, initial pattern = lower triangle of A.
func DefaultOptions() Options { return fsai.DefaultOptions() }

// New computes an FSAI-family preconditioner for the SPD matrix a.
func New(a *Matrix, opts Options) (*Preconditioner, error) {
	return fsai.Compute(a, opts)
}

// SolverDefaults mirrors the paper's solver setup: relative residual 1e-8,
// at most 10000 iterations.
func SolverDefaults() SolverOptions { return krylov.DefaultOptions() }

// Solve runs (preconditioned) Conjugate Gradient on A x = b starting from
// x = 0. Pass p == nil for plain CG.
func Solve(a *Matrix, x, b []float64, p *Preconditioner, opts SolverOptions) SolveResult {
	if p == nil {
		return krylov.Solve(a, x, b, nil, opts)
	}
	return krylov.Solve(a, x, b, p, opts)
}

// AlignOf returns the cache-line element offset of x[0] for the given line
// size — the quantity Section 4.1 derives from the virtual address. Feed it
// to Options.AlignElems when x is the vector the preconditioner will
// multiply.
func AlignOf(x []float64, lineBytes int) int {
	return cachesim.AlignOf(x, lineBytes)
}

// AllocAligned allocates an n-vector whose first element sits at the given
// element offset within a lineBytes cache line, making extensions
// reproducible across runs.
func AllocAligned(n, lineBytes, offsetElems int) []float64 {
	return cachesim.AllocAligned(n, lineBytes, offsetElems)
}
