package fsaie_test

import (
	"testing"

	fsaie "repro"
)

func poisson1D(n int) (*fsaie.Matrix, error) {
	ts := make([]fsaie.Triplet, 0, 3*n)
	for i := 0; i < n; i++ {
		ts = append(ts, fsaie.Triplet{Row: i, Col: i, Val: 2})
		if i > 0 {
			ts = append(ts, fsaie.Triplet{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			ts = append(ts, fsaie.Triplet{Row: i, Col: i + 1, Val: -1})
		}
	}
	return fsaie.FromTriplets(n, n, ts)
}

func TestFacadeEndToEnd(t *testing.T) {
	a, err := poisson1D(200)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 200)
	for i := range b {
		b[i] = 1
	}
	x := fsaie.AllocAligned(200, 64, 0)
	if got := fsaie.AlignOf(x, 64); got != 0 {
		t.Fatalf("alignment %d", got)
	}

	plain := fsaie.Solve(a, x, b, nil, fsaie.SolverDefaults())
	if !plain.Converged {
		t.Fatal("plain CG failed")
	}

	for _, v := range []fsaie.Variant{fsaie.FSAI, fsaie.FSAIESp, fsaie.FSAIEFull} {
		opts := fsaie.DefaultOptions()
		opts.Variant = v
		opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)
		p, err := fsaie.New(a, opts)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res := fsaie.Solve(a, x, b, p, fsaie.SolverDefaults())
		if !res.Converged {
			t.Fatalf("%v: PCG failed: %+v", v, res)
		}
		if res.Iterations > plain.Iterations {
			t.Errorf("%v: %d iterations worse than plain CG's %d", v, res.Iterations, plain.Iterations)
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	a, _ := fsaie.FromTriplets(2, 3, []fsaie.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := fsaie.New(a, fsaie.DefaultOptions()); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := fsaie.FromTriplets(1, 1, []fsaie.Triplet{{Row: 5, Col: 0, Val: 1}}); err == nil {
		t.Error("out-of-range triplet accepted")
	}
}
