// CFD scenario: an anisotropic diffusion operator (the hard-spectrum matrix
// class of the paper's cfd1/cfd2/parabolic_fem entries) swept over the four
// filter values of the evaluation, showing the iteration/cost trade-off of
// Section 7.2: filter 0.0 keeps every cache-friendly entry (best iterations,
// worst per-iteration cost), large filters keep almost none.
//
// Run with: go run ./examples/cfd
package main

import (
	"fmt"

	fsaie "repro"
	"repro/internal/arch"
	"repro/internal/cachesim"
	"repro/internal/matgen"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
)

func main() {
	a := matgen.Anisotropic2D(96, 96, 0.01)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	machine := arch.Skylake()
	elems := machine.ElemsPerLine()
	solverOpts := fsaie.SolverDefaults()

	fmt.Printf("anisotropic diffusion, %d unknowns, %d nonzeros, machine model %s\n\n", n, a.NNZ(), machine.Name)
	fmt.Printf("%-12s %8s %10s %10s %14s %12s\n", "variant", "filter", "iterations", "nnz(G)", "modelled t/it", "modelled t")

	report := func(label string, filter float64, p *fsaie.Preconditioner, iters int) {
		gp := pattern.FromCSR(p.G)
		cache := cachesim.New(machine.L1Sim)
		align := fsaie.AlignOf(x, machine.LineBytes)
		tr := cachesim.TraceOptions{AlignElems: align, IncludeStreams: true}
		gm, gtm := cachesim.TracePrecondition(cache, gp, tr)
		missA := cachesim.TraceCSR(cache, a, tr)
		ic := perfmodel.IterCost{
			A:    perfmodel.SpMVCost{NNZ: a.NNZ(), Rows: n, LineVisits: cachesim.CountLineVisits(pattern.FromCSR(a), elems, align), XMisses: missA},
			G:    perfmodel.SpMVCost{NNZ: p.NNZ(), Rows: n, LineVisits: cachesim.CountLineVisits(gp, elems, align), XMisses: gm},
			GT:   perfmodel.SpMVCost{NNZ: p.NNZ(), Rows: n, LineVisits: cachesim.CountLineVisits(gp.Transpose(), elems, align), XMisses: gtm},
			Rows: n,
		}
		tIter := perfmodel.IterTime(machine, ic)
		fmt.Printf("%-12s %8.3g %10d %10d %12.2fus %10.2fms\n",
			label, filter, iters, p.NNZ(), tIter*1e6, perfmodel.SolveTime(machine, ic, iters)*1e3)
	}

	// Baseline FSAI.
	opts := fsaie.DefaultOptions()
	opts.Variant = fsaie.FSAI
	opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)
	p, err := fsaie.New(a, opts)
	if err != nil {
		panic(err)
	}
	res := fsaie.Solve(a, x, b, p, solverOpts)
	report("FSAI", 0, p, res.Iterations)

	// FSAIE(full) across the filter sweep.
	for _, filter := range []float64{0.0, 0.001, 0.01, 0.1} {
		opts := fsaie.DefaultOptions()
		opts.Filter = filter
		opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		res := fsaie.Solve(a, x, b, p, solverOpts)
		report("FSAIE(full)", filter, p, res.Iterations)
	}
	fmt.Println("\nfilter=0.0 minimizes iterations but balloons nnz(G); 0.01 is the sweet",
		"\nspot the paper identifies as the best common value.")
}
