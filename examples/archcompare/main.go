// Architecture comparison: the same matrix preconditioned with FSAIE(full)
// under the three machine models of the paper — Skylake and POWER9 (64-byte
// cache lines) and A64FX (256-byte lines) — plus a sweep of hypothetical
// line sizes, showing how line size alone controls how many cache-friendly
// entries the extension can add and therefore how many iterations it saves
// (Section 7.7).
//
// Run with: go run ./examples/archcompare
package main

import (
	"fmt"

	fsaie "repro"
	"repro/internal/arch"
	"repro/internal/matgen"
)

func main() {
	a := matgen.JumpCoefficient2D(64, 64, 8, 1e3, 11)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	solverOpts := fsaie.SolverDefaults()

	base := fsaie.DefaultOptions()
	base.Variant = fsaie.FSAI
	pb, err := fsaie.New(a, base)
	if err != nil {
		panic(err)
	}
	resBase := fsaie.Solve(a, x, b, pb, solverOpts)
	fmt.Printf("heterogeneous diffusion: %d unknowns, %d nonzeros\n", n, a.NNZ())
	fmt.Printf("FSAI baseline: %d iterations, nnz(G)=%d\n\n", resBase.Iterations, pb.NNZ())

	fmt.Println("FSAIE(full), filter=0.01, per machine model:")
	for _, m := range arch.All() {
		opts := fsaie.DefaultOptions()
		opts.LineBytes = m.LineBytes
		opts.AlignElems = fsaie.AlignOf(x, m.LineBytes)
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		res := fsaie.Solve(a, x, b, p, solverOpts)
		fmt.Printf("  %-8s line=%3dB: %4d iterations (-%4.1f%%), +%5.1f%% pattern entries\n",
			m.Name, m.LineBytes, res.Iterations,
			100*float64(resBase.Iterations-res.Iterations)/float64(resBase.Iterations),
			p.ExtensionPct())
	}

	fmt.Println("\nhypothetical line-size sweep (same algorithm, one parameter):")
	for _, lineBytes := range []int{32, 64, 128, 256, 512} {
		opts := fsaie.DefaultOptions()
		opts.LineBytes = lineBytes
		opts.AlignElems = fsaie.AlignOf(x, lineBytes)
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		res := fsaie.Solve(a, x, b, p, solverOpts)
		fmt.Printf("  line=%3dB: %4d iterations, +%5.1f%% pattern entries\n",
			lineBytes, res.Iterations, p.ExtensionPct())
	}
	fmt.Println("\nLarger lines admit more zero-cost fill-in, which is why the paper's",
		"\nA64FX (256 B) improvements dwarf the Skylake/POWER9 (64 B) ones.")
}
