// Preconditioner landscape: the same SPD system solved with every
// preconditioner in the repository — plain CG, point/block Jacobi, SSOR,
// IC(0), static FSAI, cache-aware FSAIE(full), and the dynamic
// (FSPAI-style) adaptive pattern with and without cache extension.
//
// The table shows the trade-off the paper builds on: incomplete
// factorizations (IC(0), SSOR) minimize iterations but apply through
// inherently sequential triangular solves, while the approximate-inverse
// family applies through SpMV — trivially parallel and, with cache-aware
// patterns, increasingly accurate at almost no memory-system cost.
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"time"

	fsaie "repro"
	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/precond"
	"repro/internal/spectral"
)

func main() {
	a := matgen.JumpCoefficient2D(72, 72, 8, 1e4, 21)
	n := a.Rows
	fmt.Printf("heterogeneous thermal system: %d unknowns, %d nonzeros\n\n", n, a.NNZ())
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	kopt := fsaie.SolverDefaults()

	fmt.Printf("%-28s %10s %12s %12s %10s\n", "preconditioner", "iterations", "setup", "solve", "apply")

	run := func(name, apply string, build func() (krylov.Preconditioner, error)) {
		t0 := time.Now()
		m, err := build()
		setup := time.Since(t0)
		if err != nil {
			fmt.Printf("%-28s %10s\n", name, "setup-fail")
			return
		}
		t0 = time.Now()
		res := krylov.Solve(a, x, b, m, kopt)
		solve := time.Since(t0)
		iters := fmt.Sprintf("%d", res.Iterations)
		if !res.Converged {
			iters = "n/c"
		}
		fmt.Printf("%-28s %10s %10.1fms %10.1fms %10s\n",
			name, iters, ms(setup), ms(solve), apply)
	}

	run("none (plain CG)", "-", func() (krylov.Preconditioner, error) { return krylov.Identity{}, nil })
	run("Jacobi", "scale", func() (krylov.Preconditioner, error) { return krylov.NewJacobi(a), nil })
	run("block-Jacobi (16)", "dense", func() (krylov.Preconditioner, error) { return precond.NewBlockJacobi(a, 16) })
	run("SSOR (w=1)", "tri-solve", func() (krylov.Preconditioner, error) { return precond.NewSSOR(a, 1.0) })
	run("IC(0)", "tri-solve", func() (krylov.Preconditioner, error) { return precond.NewIC0(a) })
	run("FSAI (static)", "SpMV", func() (krylov.Preconditioner, error) {
		o := fsaie.DefaultOptions()
		o.Variant = fsaie.FSAI
		return fsaie.New(a, o)
	})
	run("FSAIE(full) f=0.01", "SpMV", func() (krylov.Preconditioner, error) {
		return fsaie.New(a, fsaie.DefaultOptions())
	})
	run("adaptive (FSPAI-like)", "SpMV", func() (krylov.Preconditioner, error) {
		return fsai.ComputeAdaptive(a, fsai.AdaptiveOptions{MaxPerRow: 8, Tol: 0.02})
	})
	run("adaptive + cache ext", "SpMV", func() (krylov.Preconditioner, error) {
		return fsai.ComputeAdaptive(a, fsai.AdaptiveOptions{
			MaxPerRow: 8, Tol: 0.02, CacheExtend: 64, Filter: 0.01,
		})
	})
	run("Chebyshev deg=8", "8x SpMV", func() (krylov.Preconditioner, error) {
		ext, err := spectral.CondOfMatrix(a, 60)
		if err != nil {
			return nil, err
		}
		return precond.NewChebyshev(a, 8, ext.Min*0.3, ext.Max*1.05)
	})

	fmt.Println("\nChebyshev also applies via SpMV but needs tight spectrum bounds —",
		"\non this heterogeneous matrix the Lanczos λmin estimate is loose and",
		"\nthe polynomial barely helps, while FSAI needs no spectral input.")
	fmt.Println("\n'apply' is the kernel the preconditioner needs per iteration:",
		"\ntri-solve is sequential; SpMV parallelizes — the paper's motivation",
		"\nfor (cache-aware) factorized sparse approximate inverses.")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
