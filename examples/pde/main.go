// End-to-end PDE pipeline: discretize a heterogeneous diffusion equation
// with the built-in P1 finite elements, precondition the resulting SPD
// system with FSAI and cache-aware FSAIE(full), and compare the measured
// convergence histories and the Lanczos-estimated condition numbers of the
// preconditioned operators — the spectral mechanism behind the paper's
// iteration columns, visualized.
//
// Run with: go run ./examples/pde
package main

import (
	"fmt"
	"math"

	fsaie "repro"
	"repro/internal/fem"
	"repro/internal/krylov"
	"repro/internal/spectral"
	"repro/internal/stats"
)

func main() {
	// -∇·(k∇u) = 1 on the unit square, u = 0 on the boundary, with a
	// smoothly graded conductivity spanning three orders of magnitude.
	mesh := fem.UnitSquare(56)
	k := func(x, y float64) float64 { return math.Pow(10, 3*x) } // k spans 1..1000
	a0 := fem.AssembleStiffness(mesh, k)
	b0 := fem.AssembleLoad(mesh, fem.Const(1))
	a, b, _ := fem.ApplyDirichlet(mesh, a0, b0)
	fmt.Printf("P1 FEM system: %d unknowns, %d nonzeros (conductivity 1..1e3)\n\n", a.Rows, a.NNZ())

	x := make([]float64, a.Rows)
	solverOpts := krylov.Options{Tol: 1e-8, MaxIter: 10000, RecordHistory: true}

	plainRes := krylov.Solve(a, x, b, nil, solverOpts)

	var labels []string
	var histories [][]float64
	labels = append(labels, fmt.Sprintf("plain CG (%d iters)", plainRes.Iterations))
	histories = append(histories, plainRes.History)

	kappa, _ := spectral.CondOfMatrix(a, 80)
	fmt.Printf("%-22s κ≈%9.1f  iterations %d\n", "unpreconditioned", kappa.Cond(), plainRes.Iterations)

	for _, variant := range []fsaie.Variant{fsaie.FSAI, fsaie.FSAIEFull} {
		opts := fsaie.DefaultOptions()
		opts.Variant = variant
		opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		res := krylov.Solve(a, x, b, p, solverOpts)
		cond, err := spectral.CondFSAI(a, p.G, p.GT, 80)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22v κ≈%9.1f  iterations %d  (+%.0f%% pattern entries)\n",
			variant, cond.Cond(), res.Iterations, p.ExtensionPct())
		labels = append(labels, fmt.Sprintf("%v (%d iters)", variant, res.Iterations))
		histories = append(histories, res.History)
	}

	fmt.Println("\nconvergence histories (relative residual, semilog):")
	fmt.Println(stats.ConvergencePlot(labels, histories, 72, 8))
	fmt.Println("The cache-aware extension tightens the preconditioned spectrum, which",
		"\nsteepens the convergence slope; its extra entries live in already-loaded",
		"\ncache lines, so each iteration costs nearly the same.")
}
