// Structural-mechanics scenario: a 2-dof-per-node elasticity operator (the
// paper's dominant Table 1 family) solved repeatedly from many load vectors,
// the regime Section 7.4 argues amortizes the FSAIE setup overhead: the
// preconditioner is built once and the solve phase repeats per right-hand
// side/time step.
//
// It also contrasts the one-sided FSAIE(sp) against the two-sided
// FSAIE(full) extension (Section 6).
//
// Run with: go run ./examples/structural
package main

import (
	"fmt"
	"math/rand"
	"time"

	fsaie "repro"
	"repro/internal/matgen"
)

func main() {
	a := matgen.Elasticity2D(40, 40, 50)
	n := a.Rows
	fmt.Printf("elasticity operator: %d dof, %d nonzeros\n\n", n, a.NNZ())

	const loads = 8
	rng := rand.New(rand.NewSource(7))
	rhs := make([][]float64, loads)
	for k := range rhs {
		rhs[k] = make([]float64, n)
		for i := range rhs[k] {
			rhs[k][i] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, n)
	solverOpts := fsaie.SolverDefaults()

	for _, variant := range []fsaie.Variant{fsaie.FSAI, fsaie.FSAIESp, fsaie.FSAIEFull} {
		opts := fsaie.DefaultOptions()
		opts.Variant = variant
		opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)

		t0 := time.Now()
		p, err := fsaie.New(a, opts)
		if err != nil {
			panic(err)
		}
		setup := time.Since(t0)

		totalIters := 0
		t0 = time.Now()
		for k := 0; k < loads; k++ {
			res := fsaie.Solve(a, x, rhs[k], p, solverOpts)
			if !res.Converged {
				panic("solve did not converge")
			}
			totalIters += res.Iterations
		}
		solve := time.Since(t0)
		fmt.Printf("%-12v setup %8.1fms  |  %d loads: %5d total iterations, %8.1fms solve (%.1f%% extra pattern entries)\n",
			variant, float64(setup.Microseconds())/1e3, loads, totalIters,
			float64(solve.Microseconds())/1e3, p.ExtensionPct())
	}
	fmt.Println("\nThe two-sided FSAIE(full) extension adds entries for both the Gp and",
		"\nGᵀp products (spatial + temporal locality), cutting the most iterations.",
		"\nIts higher setup cost is paid once and amortized across the load cases.")
}
