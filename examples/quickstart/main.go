// Quickstart: build a 2D Poisson system, precondition it with the
// cache-aware FSAIE(full) preconditioner and solve it with PCG, comparing
// against plain CG and classical FSAI.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	fsaie "repro"
	"repro/internal/matgen"
)

func main() {
	// A 96x96 five-point Laplacian: the "hello world" of SPD systems.
	a := matgen.Laplace2D(96, 96)
	n := a.Rows
	fmt.Printf("system: %d unknowns, %d nonzeros\n\n", n, a.NNZ())

	// Right-hand side: all ones. Allocate the solution wherever Go puts it;
	// the preconditioner reads the actual alignment off the vector, exactly
	// like the paper derives it from the virtual address (Section 4.1).
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)

	solverOpts := fsaie.SolverDefaults() // tol 1e-8, <= 10000 iterations

	// Plain CG.
	res := fsaie.Solve(a, x, b, nil, solverOpts)
	fmt.Printf("%-22s %5d iterations (converged=%v)\n", "plain CG:", res.Iterations, res.Converged)

	// Classical FSAI (Algorithm 1).
	opts := fsaie.DefaultOptions()
	opts.Variant = fsaie.FSAI
	p, err := fsaie.New(a, opts)
	if err != nil {
		panic(err)
	}
	res = fsaie.Solve(a, x, b, p, solverOpts)
	fmt.Printf("%-22s %5d iterations, nnz(G)=%d\n", "FSAI:", res.Iterations, p.NNZ())

	// Cache-aware FSAIE(full) (Algorithm 4) with the paper's best common
	// filter value. Tell it the alignment of the vector it will multiply.
	opts = fsaie.DefaultOptions() // FSAIEFull, filter=0.01, 64-byte lines
	opts.AlignElems = fsaie.AlignOf(x, opts.LineBytes)
	p, err = fsaie.New(a, opts)
	if err != nil {
		panic(err)
	}
	res = fsaie.Solve(a, x, b, p, solverOpts)
	fmt.Printf("%-22s %5d iterations, nnz(G)=%d (+%.1f%% cache-resident fill-in)\n",
		"FSAIE(full) f=0.01:", res.Iterations, p.NNZ(), p.ExtensionPct())
	fmt.Println("\nThe added entries live in cache lines the original pattern already",
		"\ntouches, so each PCG iteration costs nearly the same while the",
		"\npreconditioner is strictly more accurate.")
}
