package fsaie_test

import (
	"math"
	"path/filepath"
	"testing"

	fsaie "repro"
	fsai "repro/internal/core"
	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/mmio"
	"repro/internal/precond"
	"repro/internal/reorder"
)

// TestIntegrationPipelineMMIO exercises the full cross-module pipeline:
// generate a suite matrix, serialize it through Matrix Market, read it
// back, reorder with RCM, build FSAIE(full) on the reordered system, solve
// with PCG, map the solution back and verify the original system's
// residual.
func TestIntegrationPipelineMMIO(t *testing.T) {
	spec, ok := matgen.ByName("jump56x56-b4-j1e4")
	if !ok {
		t.Fatal("missing spec")
	}
	orig := spec.Generate()

	// Serialize and reload (symmetric coordinate format).
	path := filepath.Join(t.TempDir(), "m.mtx")
	if err := mmio.WriteFile(path, orig, true); err != nil {
		t.Fatal(err)
	}
	a, err := mmio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != orig.NNZ() {
		t.Fatalf("mmio round trip changed nnz: %d vs %d", a.NNZ(), orig.NNZ())
	}

	// Reorder.
	perm := reorder.RCM(a)
	ap := reorder.ApplySym(a, perm)
	if reorder.Bandwidth(ap) > reorder.Bandwidth(a) {
		t.Logf("note: RCM bandwidth %d vs natural %d", reorder.Bandwidth(ap), reorder.Bandwidth(a))
	}

	// Precondition and solve the permuted system.
	b := spec.RHS(orig)
	bp := reorder.PermuteVec(b, perm)
	opts := fsaie.DefaultOptions()
	p, err := fsaie.New(ap, opts)
	if err != nil {
		t.Fatal(err)
	}
	xp := make([]float64, ap.Rows)
	res := fsaie.Solve(ap, xp, bp, p, fsaie.SolverDefaults())
	if !res.Converged {
		t.Fatalf("solve failed: %+v", res)
	}

	// Map back and verify the ORIGINAL system's residual.
	x := reorder.UnpermuteVec(xp, perm)
	r := make([]float64, orig.Rows)
	orig.MulVec(r, x)
	num, den := 0.0, 0.0
	for i := range r {
		d := r[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-7 {
		t.Errorf("original-system residual %g too large", rel)
	}
}

// TestIntegrationPreconditionerContract verifies that every preconditioner
// in the repository satisfies the CG contract on the same SPD system:
// symmetric positive application and actual convergence acceleration.
func TestIntegrationPreconditionerContract(t *testing.T) {
	a := matgen.Elasticity2D(16, 16, 100)
	n := a.Rows
	builders := map[string]func() (krylov.Preconditioner, error){
		"jacobi": func() (krylov.Preconditioner, error) { return krylov.NewJacobi(a), nil },
		"blockjacobi": func() (krylov.Preconditioner, error) {
			return precond.NewBlockJacobi(a, 8)
		},
		"ssor": func() (krylov.Preconditioner, error) { return precond.NewSSOR(a, 1.2) },
		"ic0":  func() (krylov.Preconditioner, error) { return precond.NewIC0(a) },
		"fsai": func() (krylov.Preconditioner, error) {
			o := fsai.DefaultOptions()
			o.Variant = fsai.VariantFSAI
			return fsai.Compute(a, o)
		},
		"fsaie-sp": func() (krylov.Preconditioner, error) {
			o := fsai.DefaultOptions()
			o.Variant = fsai.VariantSp
			return fsai.Compute(a, o)
		},
		"fsaie-full": func() (krylov.Preconditioner, error) {
			return fsai.Compute(a, fsai.DefaultOptions())
		},
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	x := make([]float64, n)
	plain := krylov.Solve(a, x, b, nil, krylov.DefaultOptions())
	if !plain.Converged {
		t.Fatal("plain CG failed")
	}
	for name, build := range builders {
		m, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Symmetry: <Mu, v> == <u, Mv>.
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i] = math.Sin(float64(i))
			v[i] = math.Cos(float64(3 * i))
		}
		mu := make([]float64, n)
		mv := make([]float64, n)
		m.Apply(mu, u)
		m.Apply(mv, v)
		l, r := krylov.Dot(mu, v), krylov.Dot(u, mv)
		if math.Abs(l-r) > 1e-8*(1+math.Abs(l)) {
			t.Errorf("%s: not symmetric (%g vs %g)", name, l, r)
		}
		// Positive: <Mu, u> > 0 for u != 0.
		if krylov.Dot(mu, u) <= 0 {
			t.Errorf("%s: not positive definite", name)
		}
		// Effective: no worse than plain CG.
		res := krylov.Solve(a, x, b, m, krylov.DefaultOptions())
		if !res.Converged {
			t.Errorf("%s: did not converge", name)
		}
		if res.Iterations > plain.Iterations {
			t.Errorf("%s: %d iterations, plain CG needs %d", name, res.Iterations, plain.Iterations)
		}
	}
}

// TestIntegrationSolutionAccuracy cross-checks the PCG solution against a
// direct dense solve on a small system, end to end through the facade.
func TestIntegrationSolutionAccuracy(t *testing.T) {
	a := matgen.Wathen(4, 4, 77)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	// Dense reference.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	dn := a.Extract(idx, nil)
	ref := append([]float64(nil), b...)
	if err := denseSolve(dn, n, ref); err != nil {
		t.Fatal(err)
	}
	// PCG with FSAIE.
	p, err := fsaie.New(a, fsaie.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	opts := fsaie.SolverDefaults()
	opts.Tol = 1e-12
	res := fsaie.Solve(a, x, b, p, opts)
	if !res.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
	var maxRef float64
	for i := range ref {
		if v := math.Abs(ref[i]); v > maxRef {
			maxRef = v
		}
	}
	for i := range x {
		if math.Abs(x[i]-ref[i]) > 1e-6*maxRef {
			t.Fatalf("x[%d]=%g, dense reference %g", i, x[i], ref[i])
		}
	}
}

// denseSolve is a local helper: dense SPD solve via the internal package.
func denseSolve(a []float64, n int, b []float64) error {
	return dense.SolveSPD(a, n, b)
}
