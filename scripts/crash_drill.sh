#!/usr/bin/env bash
# Crash-recovery drill for the fsaid solve daemon (docs/robustness.md):
#
#   1. start fsaid with a durable -data-dir, register a matrix, run a cold
#      solve capturing the solution vector;
#   2. SIGKILL the daemon mid-solve (a held job owns a slot when it dies);
#   3. restart on the same -data-dir and assert the recovered factor serves
#      a warm cache hit whose solution is bit-identical to the pre-crash X;
#   4. flip one bit in the persisted factor entry, restart again, and assert
#      the entry is quarantined (store_corrupt_total=1), the daemon stays
#      healthy, and the solve falls back to a recomputing cache miss.
#
# Run via `make crash-drill`. With SMOKE_ARTIFACTS_DIR set, the store
# manifest (snapshot + append log) is kept for upload.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# json_num FILE KEY -> first numeric value of "KEY": N
json_num() {
    sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' "$1" | head -1
}

# start_daemon LABEL -> launches fsaid serve on the shared -data-dir, sets
# $pid and $addr, logging to stderr-LABEL.log.
start_daemon() {
    local log="$workdir/stderr-$1.log"
    "$workdir/fsaid" serve -listen 127.0.0.1:0 -runs-dir "$workdir/runs-$1" \
        -data-dir "$workdir/data" 2>"$log" &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#.*msg="fsaid listening" addr=http://\([^ ]*\).*#\1#p' "$log" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "fsaid exited early:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "no listen address announced"; cat "$log"; exit 1; }
    echo "daemon ($1) at $addr"
}

solve() { # solve BODY OUTFILE
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" \
        "http://$addr/api/v1/solve" >"$2"
}

# same_x A.json B.json -> 0 iff the two solve responses carry bit-identical
# solution vectors. python3 compares the IEEE-754 bytes; without python3,
# fall back to textually diffing the "x" array (Go emits shortest
# round-trippable decimals, so equal text <=> equal bits).
same_x() {
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$1" "$2" <<'EOF'
import json, struct, sys
vec = lambda p: b"".join(struct.pack("<d", v) for v in json.load(open(p))["x"])
sys.exit(0 if vec(sys.argv[1]) == vec(sys.argv[2]) else 1)
EOF
    else
        sed -n '/"x": \[/,/\]/p' "$1" >"$workdir/xa.txt"
        sed -n '/"x": \[/,/\]/p' "$2" >"$workdir/xb.txt"
        [ -s "$workdir/xa.txt" ] && cmp -s "$workdir/xa.txt" "$workdir/xb.txt"
    fi
}

# flip_bit FILE -> XORs one bit in the middle of FILE (python3), or
# overwrites two mid-file bytes with a fixed pattern (dd fallback).
flip_bit() {
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$1" <<'EOF'
import sys
p = sys.argv[1]
data = bytearray(open(p, "rb").read())
data[len(data) // 2] ^= 0x40
open(p, "wb").write(bytes(data))
EOF
    else
        local size; size=$(wc -c <"$1")
        printf '\252\125' | dd of="$1" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
    fi
}

echo "== building fsaid =="
go build -o "$workdir/fsaid" ./cmd/fsaid

fail=0

echo "== phase 1: cold solve against a durable data dir =="
start_daemon 1
"$workdir/fsaid" register -addr "$addr" -matgen lap64x64 -name lap
solve '{"matrix":"lap","precond":"fsaie","return_solution":true}' "$workdir/cold.json"
grep -q '"cache": *"miss"' "$workdir/cold.json" || { echo "FAIL: cold solve not a miss"; cat "$workdir/cold.json"; fail=1; }
grep -q '"converged": *true' "$workdir/cold.json" || { echo "FAIL: cold solve did not converge"; fail=1; }
grep -q '"x": *\[' "$workdir/cold.json" || { echo "FAIL: cold solve returned no solution vector"; fail=1; }

echo "== phase 2: SIGKILL mid-solve =="
# Park a job in the solve path (hold_ms) so the crash lands mid-operation,
# with a slot held and the manifest log open.
curl -sS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"lap","precond":"jacobi","hold_ms":5000,"max_iter":5}' \
    "http://$addr/api/v1/solve" >"$workdir/held.json" 2>&1 &
holdpid=$!
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/api/v1/stats" >"$workdir/stats.json" 2>/dev/null || true
    [ "$(json_num "$workdir/stats.json" inflight)" = "1" ] && break
    sleep 0.05
done
[ "$(json_num "$workdir/stats.json" inflight)" = "1" ] || { echo "FAIL: held job never went in flight"; fail=1; }
{ kill -9 "$pid" && wait "$pid"; } 2>/dev/null || true
pid=""
wait "$holdpid" 2>/dev/null || true

echo "== phase 3: restart, expect a warm bit-identical solve =="
start_daemon 2
grep -q 'msg="store recovered"' "$workdir/stderr-2.log" || { echo "FAIL: no store-recovery log line"; cat "$workdir/stderr-2.log"; fail=1; }
grep -q 'msg="store recovered".*matrices=1.*factors=1' "$workdir/stderr-2.log" \
    || { echo "FAIL: recovery did not report matrices=1 factors=1"; grep 'store recovered' "$workdir/stderr-2.log" || true; fail=1; }
solve '{"matrix":"lap","precond":"fsaie","return_solution":true}' "$workdir/warm.json"
grep -q '"cache": *"hit"' "$workdir/warm.json" || { echo "FAIL: post-crash solve not a cache hit"; cat "$workdir/warm.json"; fail=1; }
grep -q '"converged": *true' "$workdir/warm.json" || { echo "FAIL: post-crash solve did not converge"; fail=1; }
warm_setup=$(json_num "$workdir/warm.json" setup_ns)
[ "${warm_setup:-1}" -eq 0 ] || { echo "FAIL: recovered factor still paid setup: ${warm_setup}ns"; fail=1; }
if same_x "$workdir/cold.json" "$workdir/warm.json"; then
    echo "solution vectors bit-identical across the crash"
else
    echo "FAIL: post-crash warm X differs from pre-crash cold X"
    fail=1
fi

echo "== phase 3b: retrying CLI client reports its attempt count =="
"$workdir/fsaid" solve -addr "$addr" -matrix lap -precond fsaie -retries 2 >"$workdir/cli.out"
grep -q 'attempts=1' "$workdir/cli.out" || { echo "FAIL: fsaid solve output has no attempts count:"; cat "$workdir/cli.out"; fail=1; }

echo "== phase 4: corrupt the stored factor, expect quarantine-not-fatal =="
{ kill -9 "$pid" && wait "$pid"; } 2>/dev/null || true
pid=""
factor_file=$(find "$workdir/data/factors" -type f | head -1)
[ -n "$factor_file" ] || { echo "FAIL: no persisted factor entry to corrupt"; exit 1; }
flip_bit "$factor_file"
start_daemon 3
grep -q 'store factor entry corrupt' "$workdir/stderr-3.log" || { echo "FAIL: no quarantine log line"; cat "$workdir/stderr-3.log"; fail=1; }
[ -n "$(find "$workdir/data/quarantine" -type f 2>/dev/null)" ] || { echo "FAIL: quarantine directory is empty"; fail=1; }
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
grep -q '^store_corrupt_total 1$' "$workdir/metrics.txt" || { echo "FAIL: store_corrupt_total != 1"; grep '^store_' "$workdir/metrics.txt" || true; fail=1; }
curl -fsS "http://$addr/healthz" >"$workdir/health.json"
grep -q '"status": *"ok"' "$workdir/health.json" || { echo "FAIL: daemon unhealthy after quarantine:"; cat "$workdir/health.json"; fail=1; }
solve '{"matrix":"lap","precond":"fsaie"}' "$workdir/recomputed.json"
grep -q '"cache": *"miss"' "$workdir/recomputed.json" || { echo "FAIL: solve after quarantine not a recomputing miss"; cat "$workdir/recomputed.json"; fail=1; }
grep -q '"converged": *true' "$workdir/recomputed.json" || { echo "FAIL: recomputed solve did not converge"; fail=1; }

echo "== graceful shutdown on SIGTERM =="
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: fsaid did not exit on SIGTERM"
    fail=1
else
    wait "$pid" 2>/dev/null || true
    pid=""
fi

# Keep the store manifest (snapshot + append log) and the drill's solve
# responses for CI upload.
if [ -n "${SMOKE_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS_DIR/store"
    cp -f "$workdir/data/manifest.json" "$workdir/data/manifest.log" "$SMOKE_ARTIFACTS_DIR/store/" 2>/dev/null || true
    cp -f "$workdir"/cold.json "$workdir"/warm.json "$workdir"/recomputed.json "$SMOKE_ARTIFACTS_DIR/store/" 2>/dev/null || true
    echo "crash-drill artifacts kept in $SMOKE_ARTIFACTS_DIR/store"
fi

if [ "$fail" -ne 0 ]; then
    echo "crash drill FAILED"
    exit 1
fi
echo "crash drill OK"
