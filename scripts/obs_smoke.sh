#!/usr/bin/env bash
# Smoke test for the live observability server: start fsaisolve with -listen
# on a generated matrix, scrape /metrics, /debug/solve and /debug/pprof/, and
# assert the responses are sane. Run via `make obs-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building tools =="
go build -o "$workdir/fsaisolve" ./cmd/fsaisolve
go build -o "$workdir/mmtool" ./cmd/mmtool

echo "== generating test matrix =="
"$workdir/mmtool" gen jump64x64-b8-j1e3 "$workdir/m.mtx"

echo "== starting fsaisolve -listen :0 -hold =="
"$workdir/fsaisolve" -precond fsaie -align 0 -listen 127.0.0.1:0 -hold \
    -metrics-out "$workdir/run.json" "$workdir/m.mtx" 2>"$workdir/stderr.log" &
pid=$!

# Parse the bound address from stderr (the solve itself takes well under the
# timeout on any machine).
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^observability server listening on http://##p' "$workdir/stderr.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "fsaisolve exited early:"; cat "$workdir/stderr.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "no listen address announced"; cat "$workdir/stderr.log"; exit 1; }
echo "server at $addr"

# Wait for the hold message so the solve (and report write) has finished.
for _ in $(seq 1 100); do
    grep -q "holding for scrapes" "$workdir/stderr.log" && break
    sleep 0.1
done

fail=0

echo "== GET /metrics =="
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
[ -s "$workdir/metrics.txt" ] || { echo "FAIL: /metrics empty"; fail=1; }
for want in "# TYPE" "# HELP" "krylov_iterations" "cachesim_x_misses"; do
    grep -q "$want" "$workdir/metrics.txt" || { echo "FAIL: /metrics missing '$want'"; fail=1; }
done

echo "== GET /healthz =="
curl -fsS "http://$addr/healthz" >"$workdir/health.json"
grep -q '"status": *"ok"' "$workdir/health.json" || { echo "FAIL: /healthz not ok:"; cat "$workdir/health.json"; fail=1; }
grep -q '"solve": *"converged"' "$workdir/health.json" || { echo "FAIL: /healthz missing solve status:"; cat "$workdir/health.json"; fail=1; }

echo "== GET /debug/solve =="
curl -fsS "http://$addr/debug/solve" >"$workdir/solve.json"
grep -q '"done": *true' "$workdir/solve.json" || { echo "FAIL: /debug/solve not done:"; cat "$workdir/solve.json"; fail=1; }
grep -q '"iteration"' "$workdir/solve.json" || { echo "FAIL: /debug/solve has no iteration"; fail=1; }

echo "== GET /debug/solve?stream=1 (SSE) =="
# The solve is finished, so the stream replays the final state and closes.
curl -fsS -N --max-time 10 "http://$addr/debug/solve?stream=1" >"$workdir/sse.txt" || true
grep -q "^event: solve" "$workdir/sse.txt" || { echo "FAIL: no SSE event:"; cat "$workdir/sse.txt"; fail=1; }

echo "== GET /debug/pprof/cmdline =="
curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null || { echo "FAIL: pprof"; fail=1; }

echo "== GET /runs =="
curl -fsS "http://$addr/runs" >"$workdir/runs.json"
grep -q "run.json" "$workdir/runs.json" || { echo "FAIL: /runs does not list the report:"; cat "$workdir/runs.json"; fail=1; }
curl -fsS "http://$addr/runs/run.json" >"$workdir/fetched.json"
grep -q '"schema_version"' "$workdir/fetched.json" || { echo "FAIL: /runs/run.json unreadable"; fail=1; }
grep -q '"roofline"' "$workdir/fetched.json" || { echo "FAIL: run report missing roofline section"; fail=1; }

echo "== GET /roofline =="
curl -fsS "http://$addr/roofline" >"$workdir/roofline.json"
grep -q '"machine"' "$workdir/roofline.json" || { echo "FAIL: /roofline missing machine roofs:"; cat "$workdir/roofline.json"; fail=1; }
grep -q '"spmv"' "$workdir/roofline.json" || { echo "FAIL: /roofline has no spmv placement:"; cat "$workdir/roofline.json"; fail=1; }

echo "== GET /profiles (no sampler: disabled but valid JSON) =="
curl -fsS "http://$addr/profiles" >"$workdir/profiles.json"
grep -q '"enabled": *false' "$workdir/profiles.json" || { echo "FAIL: /profiles should report disabled:"; cat "$workdir/profiles.json"; fail=1; }

echo "== no observability route may answer 5xx =="
for route in / /metrics /healthz /debug/solve /runs /traces /slo /profiles /roofline; do
    code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$addr$route")
    if [ "$code" -ge 500 ]; then
        echo "FAIL: GET $route answered HTTP $code"
        fail=1
    fi
done

kill "$pid" && wait "$pid" 2>/dev/null || true
pid=""

if [ "$fail" -ne 0 ]; then
    echo "obs smoke test FAILED"
    exit 1
fi
echo "obs smoke test OK"
