#!/bin/sh
# Full local gate: mirrors .github/workflows/ci.yml and `make check`.
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: print the offending files so the diff is in the log.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# staticcheck is optional tooling: run it when the host has it, skip
# (loudly) when it does not — bare containers stay green either way.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping" >&2
fi

go test ./...
go test -race ./...
