#!/usr/bin/env bash
# Distributed-fleet drill for the fsaid cluster router (docs/cluster.md):
#
#   1. start three store-backed shards and a router fronting them
#      (replication factor 1, aggressive warm threshold);
#   2. register and solve through the router with the unchanged client API:
#      cold solve is a miss on the owning shard, repeat solve a warm hit,
#      and the hot factor is replicated to the replica shard;
#   3. SIGKILL the primary mid-traffic: every client request keeps
#      succeeding (failover to the warm replica), the traced solve keeps
#      its trace id across the failover hop, and the failover solution is
#      bit-identical to the pre-kill X;
#   4. restart the killed shard on the same address and data dir: the
#      membership prober re-admits it (rebalance), and routed solves still
#      answer warm;
#   5. record the routed-vs-direct warm solve overhead to
#      BENCH_history.json via fsaicompare -record.
#
# Run via `make cluster-drill`. With SMOKE_ARTIFACTS_DIR set, the drill's
# solve responses and the router topology snapshots are kept for upload.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)

workdir=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && { kill -9 "$p" && wait "$p"; } 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

# json_num FILE KEY -> first numeric value of "KEY": N
json_num() {
    sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' "$1" | head -1
}

# json_str FILE KEY -> first string value of "KEY": "..."
json_str() {
    sed -n 's/.*"'"$2"'": *"\([^"]*\)".*/\1/p' "$1" | head -1
}

# start_shard LABEL [ADDR] -> launches fsaid serve with a per-shard durable
# data dir and sets SHARD_PID/SHARD_ADDR. Runs in the parent shell (no
# command substitution) so the pid lands in the cleanup array and stays a
# waitable child. A second argument pins the listen address (the restart
# phase reuses the original).
SHARD_PID=""
SHARD_ADDR=""
start_shard() {
    local label=$1 listen=${2:-127.0.0.1:0}
    local log="$workdir/shard-$label.log"
    "$workdir/fsaid" serve -listen "$listen" -data-dir "$workdir/data-$label" \
        -runs-dir "$workdir/runs-$label" 2>"$log" &
    SHARD_PID=$!
    pids+=("$SHARD_PID")
    SHARD_ADDR=""
    for _ in $(seq 1 100); do
        SHARD_ADDR=$(sed -n 's#.*msg="fsaid listening" addr=http://\([^ ]*\).*#\1#p' "$log" | head -1)
        [ -n "$SHARD_ADDR" ] && return 0
        kill -0 "$SHARD_PID" 2>/dev/null || { echo "shard $label exited early:" >&2; cat "$log" >&2; exit 1; }
        sleep 0.1
    done
    echo "shard $label announced no address" >&2
    cat "$log" >&2
    exit 1
}

# same_x A.json B.json -> 0 iff both solve responses carry bit-identical
# solution vectors (same comparison as the crash drill).
same_x() {
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$1" "$2" <<'EOF'
import json, struct, sys
vec = lambda p: b"".join(struct.pack("<d", v) for v in json.load(open(p))["x"])
sys.exit(0 if vec(sys.argv[1]) == vec(sys.argv[2]) else 1)
EOF
    else
        sed -n '/"x": \[/,/\]/p' "$1" >"$workdir/xa.txt"
        sed -n '/"x": \[/,/\]/p' "$2" >"$workdir/xb.txt"
        [ -s "$workdir/xa.txt" ] && cmp -s "$workdir/xa.txt" "$workdir/xb.txt"
    fi
}

now_ns() { date +%s%N; }

echo "== building fsaid and fsaicompare =="
go build -o "$workdir/fsaid" ./cmd/fsaid
go build -o "$workdir/fsaicompare" ./cmd/fsaicompare

fail=0

echo "== phase 1: three shards + router =="
start_shard 1
pid1=$SHARD_PID addr1=$SHARD_ADDR
start_shard 2
pid2=$SHARD_PID addr2=$SHARD_ADDR
start_shard 3
pid3=$SHARD_PID addr3=$SHARD_ADDR
rlog="$workdir/router.log"
"$workdir/fsaid" route -listen 127.0.0.1:0 -peers "$addr1,$addr2,$addr3" \
    -replicas 1 -warm-threshold 1 -probe-interval 200ms 2>"$rlog" &
rpid=$!
pids+=("$rpid")
router=""
for _ in $(seq 1 100); do
    router=$(sed -n 's#.*msg="fsaid router listening" addr=http://\([^ ]*\).*#\1#p' "$rlog" | head -1)
    [ -n "$router" ] && break
    kill -0 "$rpid" 2>/dev/null || { echo "router exited early:"; cat "$rlog"; exit 1; }
    sleep 0.1
done
[ -n "$router" ] || { echo "router announced no address"; cat "$rlog"; exit 1; }
echo "router at $router, shards at $addr1 $addr2 $addr3"

echo "== phase 2: register and solve through the router =="
"$workdir/fsaid" register -addr "$router" -matgen lap64x64 -name lap
curl -fsS "http://$router/cluster" >"$workdir/topology-1.json"
grep -q '"fingerprint"' "$workdir/topology-1.json" || { echo "FAIL: /cluster lists no matrices"; cat "$workdir/topology-1.json"; fail=1; }

solve_body='{"matrix":"lap","precond":"fsaie","return_solution":true}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
    "http://$router/api/v1/solve" >"$workdir/cold.json"
grep -q '"cache": *"miss"' "$workdir/cold.json" || { echo "FAIL: cold routed solve not a miss"; cat "$workdir/cold.json"; fail=1; }
grep -q '"converged": *true' "$workdir/cold.json" || { echo "FAIL: cold routed solve did not converge"; fail=1; }

curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
    "http://$router/api/v1/solve" >"$workdir/warm.json"
grep -q '"cache": *"hit"' "$workdir/warm.json" || { echo "FAIL: repeat routed solve not a warm hit"; cat "$workdir/warm.json"; fail=1; }

# The owning pair comes from the topology document: primary first.
primary=$(python3 -c '
import json, sys
top = json.load(open(sys.argv[1]))
print(top["matrices"][0]["owners"][0].removeprefix("http://"))' "$workdir/topology-1.json" 2>/dev/null) || primary=""
replica=$(python3 -c '
import json, sys
top = json.load(open(sys.argv[1]))
print(top["matrices"][0]["owners"][1].removeprefix("http://"))' "$workdir/topology-1.json" 2>/dev/null) || replica=""
if [ -z "$primary" ] || [ -z "$replica" ]; then
    # No python3: fall back to the first two shard addresses mentioned in
    # the owners array.
    primary=$(sed -n 's/.*"owners": *\[ *"http:\/\/\([^"]*\)".*/\1/p' "$workdir/topology-1.json" | head -1)
    replica=$(tr ',' '\n' <"$workdir/topology-1.json" | sed -n 's/.*"http:\/\/\([^"]*\)".*/\1/p' | sed -n 2p)
fi
[ -n "$primary" ] && [ -n "$replica" ] || { echo "FAIL: could not read owners from /cluster"; cat "$workdir/topology-1.json"; exit 1; }
echo "primary=$primary replica=$replica"

# The warm hit happened on the owning shard, not anywhere else.
curl -fsS "http://$primary/api/v1/stats" >"$workdir/primary-stats.json"
hits=$(json_num "$workdir/primary-stats.json" hits)
[ "${hits:-0}" -ge 1 ] || { echo "FAIL: owning shard reports no cache hit (hits=$hits)"; fail=1; }

echo "== phase 3: hot factor replicates to the replica shard =="
replicated=0
for _ in $(seq 1 100); do
    curl -fsS "http://$replica/api/v1/stats" >"$workdir/replica-stats.json" 2>/dev/null || true
    if [ "$(json_num "$workdir/replica-stats.json" entries)" -ge 1 ] 2>/dev/null; then
        replicated=1
        break
    fi
    sleep 0.1
done
[ "$replicated" -eq 1 ] || { echo "FAIL: replica never cached the hot factor"; cat "$workdir/replica-stats.json"; fail=1; }
echo "replica cache warmed"

echo "== phase 4: SIGKILL the primary mid-traffic =="
# Sustained client traffic across the kill: every request must succeed.
primary_pid=""
primary_label=""
for pair in "1 $pid1 $addr1" "2 $pid2 $addr2" "3 $pid3 $addr3"; do
    read -r l p a <<<"$pair"
    if [ "$a" = "$primary" ]; then
        primary_pid=$p
        primary_label=$l
    fi
done
[ -n "$primary_pid" ] || { echo "FAIL: primary pid not found"; exit 1; }

traffic_fail=0
for i in $(seq 1 12); do
    if [ "$i" -eq 4 ]; then
        { kill -9 "$primary_pid" && wait "$primary_pid"; } 2>/dev/null || true
        echo "primary killed at request $i"
    fi
    if ! curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
        "http://$router/api/v1/solve" >"$workdir/traffic-$i.json"; then
        echo "FAIL: routed request $i failed during the outage"
        traffic_fail=1
        continue
    fi
    grep -q '"converged": *true' "$workdir/traffic-$i.json" \
        || { echo "FAIL: routed request $i did not converge"; traffic_fail=1; }
done
[ "$traffic_fail" -eq 0 ] || fail=1
[ "$traffic_fail" -eq 0 ] && echo "zero failed client requests across the kill"

# A traced solve during the outage keeps its trace id, serves from the
# replica's warm cache, and returns the bit-identical solution.
tid="11112222333344445555666677778888"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -H "traceparent: 00-$tid-aaaabbbbccccdddd-01" -d "$solve_body" \
    "http://$router/api/v1/solve" >"$workdir/failover.json"
[ "$(json_str "$workdir/failover.json" trace_id)" = "$tid" ] \
    || { echo "FAIL: failover solve lost the trace id"; cat "$workdir/failover.json"; fail=1; }
grep -q '"cache": *"hit"' "$workdir/failover.json" \
    || { echo "FAIL: failover solve not warm (replica cache missing)"; cat "$workdir/failover.json"; fail=1; }
if same_x "$workdir/cold.json" "$workdir/failover.json"; then
    echo "failover X bit-identical to the pre-kill solution"
else
    echo "FAIL: failover X differs from the pre-kill solution"
    fail=1
fi
# The same trace id resolves on the router (routing hop) and on the shard
# that executed the solve (span stitching across nodes).
curl -fsS "http://$router/traces/$tid" >/dev/null \
    || { echo "FAIL: router kept no trace for $tid"; fail=1; }
curl -fsS "http://$replica/traces/$tid" >/dev/null \
    || { echo "FAIL: executing shard kept no trace for $tid"; fail=1; }

echo "== phase 5: restart the killed shard, expect rebalance =="
# Same address AND same durable data dir: the restarted shard rehydrates
# its registry from the store instead of coming back empty.
start_shard "$primary_label" "$primary"
rejoined=0
for _ in $(seq 1 150); do
    curl -fsS "http://$router/cluster" >"$workdir/topology-2.json" 2>/dev/null || true
    if python3 -c '
import json, sys
top = json.load(open(sys.argv[1]))
states = {p["addr"].removeprefix("http://"): p["state"] for p in top["peers"]}
sys.exit(0 if states.get(sys.argv[2]) == "healthy" else 1)' \
        "$workdir/topology-2.json" "$primary" 2>/dev/null; then
        rejoined=1
        break
    fi
    grep -q '"addr": *"http://'"$primary"'"' "$workdir/topology-2.json" 2>/dev/null \
        && grep -q '"state": *"healthy"' "$workdir/topology-2.json" 2>/dev/null \
        && ! command -v python3 >/dev/null 2>&1 && { rejoined=1; break; }
    sleep 0.2
done
[ "$rejoined" -eq 1 ] || { echo "FAIL: restarted shard never rejoined"; cat "$workdir/topology-2.json"; fail=1; }
echo "restarted shard rejoined the ring"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
    "http://$router/api/v1/solve" >"$workdir/rebalanced.json"
grep -q '"converged": *true' "$workdir/rebalanced.json" \
    || { echo "FAIL: solve after rebalance did not converge"; cat "$workdir/rebalanced.json"; fail=1; }
if same_x "$workdir/cold.json" "$workdir/rebalanced.json"; then
    echo "post-rebalance X bit-identical"
else
    echo "FAIL: post-rebalance X differs"
    fail=1
fi

echo "== phase 6: routed-vs-direct warm overhead into BENCH_history.json =="
# Both solves are warm cache hits; the difference is the router hop. Wall
# time is measured client-side (the shard's total_ns excludes routing).
t0=$(now_ns)
curl -fsS -X POST -H 'Content-Type: application/json' -d "$solve_body" \
    "http://$router/api/v1/solve" >"$workdir/routed-warm.json"
t1=$(now_ns)
routed_ns=$((t1 - t0))
direct_target=$(json_str "$workdir/routed-warm.json" matrix)
t0=$(now_ns)
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"'"$direct_target"'","precond":"fsaie","return_solution":true}' \
    "http://$replica/api/v1/solve" >"$workdir/direct-warm.json"
t1=$(now_ns)
direct_ns=$((t1 - t0))
grep -q '"cache": *"hit"' "$workdir/routed-warm.json" || { echo "FAIL: routed bench solve not warm"; fail=1; }
grep -q '"cache": *"hit"' "$workdir/direct-warm.json" || { echo "FAIL: direct bench solve not warm"; fail=1; }
echo "routed warm: ${routed_ns}ns, direct warm: ${direct_ns}ns"

if command -v python3 >/dev/null 2>&1; then
    python3 - "$workdir" "$routed_ns" "$direct_ns" <<'EOF'
import json, sys
wd, routed_ns, direct_ns = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
def entry(variant, wall_ns, resp):
    return {
        "matrix_id": 0, "matrix": "cluster-smoke-lap64x64",
        "rows": 4096, "nnz": 0, "variant": variant, "filter": 0.01,
        "nnz_g": 0, "ext_pct": 0,
        "iterations": resp["iterations"], "converged": resp["converged"],
        "setup_wall_ns": resp["setup_ns"], "solve_wall_ns": wall_ns,
    }
routed = json.load(open(f"{wd}/routed-warm.json"))
direct = json.load(open(f"{wd}/direct-warm.json"))
rep = {"schema_version": 7, "tool": "cluster-drill", "entries": [
    entry("routed-warm", routed_ns, routed),
    entry("direct-warm", direct_ns, direct),
]}
json.dump(rep, open(f"{wd}/cluster_smoke.json", "w"), indent=2)
EOF
    "$workdir/fsaicompare" -record "$ROOT/BENCH_history.json" \
        "$workdir/cluster_smoke.json" "$workdir/cluster_smoke.json" \
        || { echo "FAIL: fsaicompare -record rejected the cluster smoke report"; fail=1; }
else
    echo "python3 not found; skipping the BENCH_history.json record"
fi

echo "== router health and metrics =="
curl -fsS "http://$router/healthz" >"$workdir/router-health.json" || true
curl -fsS "http://$router/metrics" >"$workdir/router-metrics.txt"
grep -q '^cluster_failovers [1-9]' "$workdir/router-metrics.txt" \
    || { echo "FAIL: cluster_failovers not counted"; grep '^cluster_' "$workdir/router-metrics.txt" || true; fail=1; }
grep -q '^cluster_warmups{outcome="ok"} [1-9]' "$workdir/router-metrics.txt" \
    || { echo "FAIL: cluster_warmups ok not counted"; grep '^cluster_warmups' "$workdir/router-metrics.txt" || true; fail=1; }
curl -fsS "http://$router/version" >/dev/null || { echo "FAIL: router /version unreachable"; fail=1; }

if [ -n "${SMOKE_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS_DIR/cluster"
    cp -f "$workdir"/topology-*.json "$workdir"/cold.json "$workdir"/failover.json \
        "$workdir"/router-metrics.txt "$workdir"/cluster_smoke.json \
        "$SMOKE_ARTIFACTS_DIR/cluster/" 2>/dev/null || true
    echo "cluster-drill artifacts kept in $SMOKE_ARTIFACTS_DIR/cluster"
fi

if [ "$fail" -ne 0 ]; then
    echo "cluster drill FAILED"
    exit 1
fi
echo "cluster drill OK"
