#!/usr/bin/env bash
# Perf-regression gate: reproduce the committed BENCH_baseline.json run and
# diff it with fsaicompare. Deterministic metrics only (iterations, factor
# size, simulated cache misses), so the gate is stable across machines.
#
#   scripts/compare_baseline.sh           # compare against the baseline
#   scripts/compare_baseline.sh -update   # regenerate the committed baseline
set -euo pipefail

cd "$(dirname "$0")/.."
baseline=BENCH_baseline.json

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fsaisolve" ./cmd/fsaisolve
go build -o "$workdir/mmtool" ./cmd/mmtool
go build -o "$workdir/fsaicompare" ./cmd/fsaicompare

"$workdir/mmtool" gen jump64x64-b8-j1e3 "$workdir/m.mtx"
# -align 0 pins the x-vector alignment so the simulated miss counts are
# reproducible bit-for-bit.
"$workdir/fsaisolve" -precond fsaie -align 0 -metrics-out "$workdir/candidate.json" "$workdir/m.mtx"

if [ "${1:-}" = "-update" ]; then
    cp "$workdir/candidate.json" "$baseline"
    echo "updated $baseline"
    exit 0
fi

[ -f "$baseline" ] || { echo "missing $baseline (run with -update to create it)"; exit 2; }
"$workdir/fsaicompare" "$baseline" "$workdir/candidate.json"
