#!/usr/bin/env bash
# Smoke test for the fsaid solve daemon: start it on a free port, register a
# generated matrix, run a cold solve then a warm solve, and assert the
# preconditioner cache did its job — the warm solve reports a cache hit with
# zero setup time and beats the cold solve end-to-end. Also drills the
# admission-control path (429 + Retry-After on saturation), the mounted
# observability endpoints, and asserts the robustness metric families
# (store_*, retry_*, degraded_*) render with # HELP/# TYPE headers. The
# crash-recovery path itself is drilled separately by crash_drill.sh.
# Run via `make service-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# json_num FILE KEY -> first numeric value of "KEY": N
json_num() {
    sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9][0-9]*\).*/\1/p' "$1" | head -1
}

# json_str FILE KEY -> first string value of "KEY": "..."
json_str() {
    sed -n 's/.*"'"$2"'": *"\([^"]*\)".*/\1/p' "$1" | head -1
}

# json_ok FILE -> asserts the file parses as JSON (when python3 is around)
json_ok() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -m json.tool "$1" >/dev/null
    else
        grep -q '[{[]' "$1"
    fi
}

echo "== building fsaid =="
go build -o "$workdir/fsaid" ./cmd/fsaid

echo "== starting fsaid serve =="
# One slot, no waiting queue: the saturation drill below is deterministic.
# The profiling cadence is cranked way up so a capture window lands during
# the smoke run (production default is 10s out of every minute).
# -data-dir turns on the durable store (its gauges/counters must render);
# the 4GiB soft limit arms the degradation layer without ever tripping it.
"$workdir/fsaid" serve -listen 127.0.0.1:0 -runs-dir "$workdir/runs" \
    -data-dir "$workdir/data" -mem-soft-limit 4GiB \
    -max-inflight 1 -queue=-1 \
    -prof-window 300ms -prof-gap 200ms 2>"$workdir/stderr.log" &
pid=$!

addr=""
for _ in $(seq 1 100); do
    # The daemon announces itself via slog: ... msg="fsaid listening" addr=http://H:P
    addr=$(sed -n 's#.*msg="fsaid listening" addr=http://\([^ ]*\).*#\1#p' "$workdir/stderr.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "fsaid exited early:"; cat "$workdir/stderr.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "no listen address announced"; cat "$workdir/stderr.log"; exit 1; }
echo "daemon at $addr"

fail=0

echo "== register matrix (fsaid register -matgen) =="
"$workdir/fsaid" register -addr "$addr" -matgen lap64x64 -name lap

echo "== cold solve =="
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"lap","precond":"fsaie"}' \
    "http://$addr/api/v1/solve" >"$workdir/cold.json"
grep -q '"cache": *"miss"' "$workdir/cold.json" || { echo "FAIL: cold solve not a miss:"; cat "$workdir/cold.json"; fail=1; }
grep -q '"converged": *true' "$workdir/cold.json" || { echo "FAIL: cold solve did not converge"; fail=1; }
cold_setup=$(json_num "$workdir/cold.json" setup_ns)
cold_total=$(json_num "$workdir/cold.json" total_ns)
[ "${cold_setup:-0}" -gt 0 ] || { echo "FAIL: cold solve reports no setup cost"; fail=1; }

echo "== warm solve =="
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"lap","precond":"fsaie"}' \
    "http://$addr/api/v1/solve" >"$workdir/warm.json"
grep -q '"cache": *"hit"' "$workdir/warm.json" || { echo "FAIL: warm solve not a hit:"; cat "$workdir/warm.json"; fail=1; }
warm_setup=$(json_num "$workdir/warm.json" setup_ns)
warm_total=$(json_num "$workdir/warm.json" total_ns)
[ "${warm_setup:-1}" -eq 0 ] || { echo "FAIL: warm solve paid setup: ${warm_setup}ns"; fail=1; }
if [ -n "$cold_total" ] && [ -n "$warm_total" ] && [ "$warm_total" -ge "$cold_total" ]; then
    echo "FAIL: warm solve (${warm_total}ns) not faster than cold (${cold_total}ns)"
    fail=1
fi
echo "cold: total=${cold_total}ns setup=${cold_setup}ns; warm: total=${warm_total}ns setup=${warm_setup}ns"

echo "== request tracing: /traces and /traces/<id> =="
warm_trace=$(json_str "$workdir/warm.json" trace_id)
[ -n "$warm_trace" ] || { echo "FAIL: warm solve response has no trace_id"; cat "$workdir/warm.json"; fail=1; }
curl -fsS "http://$addr/traces" >"$workdir/traces.json"
json_ok "$workdir/traces.json" || { echo "FAIL: /traces is not well-formed JSON"; cat "$workdir/traces.json"; fail=1; }
grep -q "\"$warm_trace\"" "$workdir/traces.json" || { echo "FAIL: /traces does not list the warm solve's trace"; cat "$workdir/traces.json"; fail=1; }
curl -fsS "http://$addr/traces/$warm_trace" >"$workdir/trace.json"
json_ok "$workdir/trace.json" || { echo "FAIL: /traces/<id> is not well-formed JSON"; fail=1; }
grep -q '"solve-request"' "$workdir/trace.json" || { echo "FAIL: trace missing solve-request root span"; cat "$workdir/trace.json"; fail=1; }
grep -q '"cg-solve"' "$workdir/trace.json" || { echo "FAIL: trace missing cg-solve span"; cat "$workdir/trace.json"; fail=1; }

echo "== SLO monitor: /slo =="
curl -fsS "http://$addr/slo" >"$workdir/slo.json"
json_ok "$workdir/slo.json" || { echo "FAIL: /slo is not well-formed JSON"; cat "$workdir/slo.json"; fail=1; }
grep -q '"target"' "$workdir/slo.json" || { echo "FAIL: /slo missing target"; cat "$workdir/slo.json"; fail=1; }
grep -q '"warm_solve"' "$workdir/slo.json" || { echo "FAIL: /slo missing warm_solve series"; cat "$workdir/slo.json"; fail=1; }
grep -q '"cold_solve"' "$workdir/slo.json" || { echo "FAIL: /slo missing cold_solve series"; cat "$workdir/slo.json"; fail=1; }

echo "== cache counters on /metrics =="
curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
grep -q '^service_cache_hits 1$' "$workdir/metrics.txt" || { echo "FAIL: cache-hit counter not incremented"; grep service_cache "$workdir/metrics.txt" || true; fail=1; }
grep -q '^service_cache_misses 1$' "$workdir/metrics.txt" || { echo "FAIL: cache-miss counter wrong"; fail=1; }
grep -q '^go_goroutines ' "$workdir/metrics.txt" || { echo "FAIL: runtime metrics missing from /metrics"; fail=1; }

echo "== robustness metric families carry # HELP / # TYPE headers =="
# docs/robustness.md documents these families; every one must render from
# the first scrape (zero-registered), with its header pair, so dashboards
# and alerts can rely on them before the first failure event.
for fam in \
    store_entries:gauge store_bytes:gauge store_corrupt_total:counter \
    store_writes_total:counter store_deletes_total:counter store_errors_total:counter \
    retry_replays_total:counter retry_coalesced_total:counter retry_deadline_expired_total:counter \
    degraded_state:gauge degraded_shed_total:counter degraded_evictions_total:counter; do
    name=${fam%:*}; kind=${fam#*:}
    grep -q "^# HELP $name " "$workdir/metrics.txt" || { echo "FAIL: missing # HELP for $name"; fail=1; }
    grep -q "^# TYPE $name $kind\$" "$workdir/metrics.txt" || { echo "FAIL: missing # TYPE $name $kind"; fail=1; }
done
# The durable store persisted the registered matrix and the cold solve's
# factor: writes must be non-zero and both entry kinds present.
grep -q '^store_writes_total [1-9]' "$workdir/metrics.txt" || { echo "FAIL: store_writes_total not incremented"; grep '^store_' "$workdir/metrics.txt" || true; fail=1; }
grep -q '^store_entries{kind="matrix"} 1$' "$workdir/metrics.txt" || { echo "FAIL: store_entries{kind=\"matrix\"} != 1"; fail=1; }
grep -q '^store_entries{kind="factor"} 1$' "$workdir/metrics.txt" || { echo "FAIL: store_entries{kind=\"factor\"} != 1"; fail=1; }
grep -q '^degraded_state 0$' "$workdir/metrics.txt" || { echo "FAIL: degraded_state not 0 (normal) under no pressure"; fail=1; }

echo "== /healthz =="
curl -fsS "http://$addr/healthz" >"$workdir/health.json"
grep -q '"status": *"ok"' "$workdir/health.json" || { echo "FAIL: /healthz not ok:"; cat "$workdir/health.json"; fail=1; }

echo "== live roofline: /roofline and roofline_* gauges =="
curl -fsS "http://$addr/roofline" >"$workdir/roofline.json"
json_ok "$workdir/roofline.json" || { echo "FAIL: /roofline is not well-formed JSON"; cat "$workdir/roofline.json"; fail=1; }
grep -q '"machine"' "$workdir/roofline.json" || { echo "FAIL: /roofline missing machine roofs"; cat "$workdir/roofline.json"; fail=1; }
grep -q '"spmv"' "$workdir/roofline.json" || { echo "FAIL: /roofline has no spmv kernel placement"; cat "$workdir/roofline.json"; fail=1; }
grep -q '^roofline_achieved_bandwidth_bytes{' "$workdir/metrics.txt" || { echo "FAIL: roofline_achieved_bandwidth_bytes missing from /metrics"; fail=1; }
grep -q '^roofline_achieved_flops{' "$workdir/metrics.txt" || { echo "FAIL: roofline_achieved_flops missing from /metrics"; fail=1; }

echo "== continuous profiling: /profiles =="
# Wait for the sampler (300ms window / 200ms gap) to land a capture.
profiled=0
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/profiles" >"$workdir/profiles.json"
    if grep -q '"id": *1' "$workdir/profiles.json"; then profiled=1; break; fi
    sleep 0.1
done
json_ok "$workdir/profiles.json" || { echo "FAIL: /profiles is not well-formed JSON"; cat "$workdir/profiles.json"; fail=1; }
grep -q '"enabled": *true' "$workdir/profiles.json" || { echo "FAIL: /profiles reports sampler disabled"; cat "$workdir/profiles.json"; fail=1; }
[ "$profiled" = "1" ] || { echo "FAIL: no profiling window captured"; cat "$workdir/profiles.json"; fail=1; }
curl -fsS "http://$addr/profiles/1" >"$workdir/window.json"
json_ok "$workdir/window.json" || { echo "FAIL: /profiles/1 is not well-formed JSON"; fail=1; }
curl -fsS "http://$addr/profiles/1/heap" >"$workdir/heap.pb.gz"
[ -s "$workdir/heap.pb.gz" ] || { echo "FAIL: /profiles/1/heap empty"; fail=1; }

echo "== no observability route may answer 5xx =="
for route in / /metrics /healthz /debug/solve /runs /traces /slo /profiles /roofline; do
    code=$(curl -sS -o /dev/null -w '%{http_code}' "http://$addr$route")
    if [ "$code" -ge 500 ]; then
        echo "FAIL: GET $route answered HTTP $code"
        fail=1
    fi
done

echo "== admission control: saturate and expect 429 =="
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"lap","precond":"jacobi","hold_ms":3000,"max_iter":5}' \
    "http://$addr/api/v1/solve" >"$workdir/hold.json" &
holdpid=$!
# Wait until the holding job owns the single slot.
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/api/v1/stats" >"$workdir/stats.json"
    [ "$(json_num "$workdir/stats.json" inflight)" = "1" ] && break
    sleep 0.05
done
code=$(curl -sS -o "$workdir/reject.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d '{"matrix":"lap","precond":"jacobi"}' \
    "http://$addr/api/v1/solve")
[ "$code" = "429" ] || { echo "FAIL: saturated daemon answered $code, want 429"; cat "$workdir/reject.json"; fail=1; }
retry_after=$(json_num "$workdir/reject.json" retry_after_s)
[ "${retry_after:-0}" -ge 1 ] || { echo "FAIL: 429 without retry_after_s:"; cat "$workdir/reject.json"; fail=1; }
wait "$holdpid" || { echo "FAIL: holding job failed"; cat "$workdir/hold.json"; fail=1; }

echo "== run reports =="
curl -fsS "http://$addr/runs" >"$workdir/runs.json"
grep -q 'j-000001.json' "$workdir/runs.json" || { echo "FAIL: /runs does not list job reports:"; cat "$workdir/runs.json"; fail=1; }
curl -fsS "http://$addr/runs/j-000002.json" >"$workdir/warmreport.json"
grep -q '"cache": *"hit"' "$workdir/warmreport.json" || { echo "FAIL: warm run report missing cache=hit"; cat "$workdir/warmreport.json"; fail=1; }
report_trace=$(json_str "$workdir/warmreport.json" trace_id)
if [ "$report_trace" != "$warm_trace" ]; then
    echo "FAIL: run report trace_id ($report_trace) != solve response trace_id ($warm_trace)"
    fail=1
fi
grep -q '"slo"' "$workdir/warmreport.json" || { echo "FAIL: warm run report missing slo section"; fail=1; }
grep -q '"roofline"' "$workdir/warmreport.json" || { echo "FAIL: warm run report missing roofline section"; cat "$workdir/warmreport.json"; fail=1; }
grep -q '"achieved_bandwidth_bytes"' "$workdir/warmreport.json" || { echo "FAIL: roofline section has no achieved bandwidth"; fail=1; }

echo "== batched multi-RHS solving =="
# A second daemon with the batcher armed: concurrent warm solves on the
# same fingerprint must coalesce into one block solve (batch size >= 2),
# every member's response and run report must carry the batch section, and
# the batch_* metric families must render with # HELP/# TYPE headers.
"$workdir/fsaid" serve -listen 127.0.0.1:0 -runs-dir "$workdir/bruns" \
    -batch-window 300ms -batch-max 8 2>"$workdir/bstderr.log" &
bpid=$!
baddr=""
for _ in $(seq 1 100); do
    baddr=$(sed -n 's#.*msg="fsaid listening" addr=http://\([^ ]*\).*#\1#p' "$workdir/bstderr.log" | head -1)
    [ -n "$baddr" ] && break
    kill -0 "$bpid" 2>/dev/null || { echo "batching fsaid exited early:"; cat "$workdir/bstderr.log"; exit 1; }
    sleep 0.1
done
[ -n "$baddr" ] || { echo "no listen address announced by batching fsaid"; cat "$workdir/bstderr.log"; exit 1; }
"$workdir/fsaid" register -addr "$baddr" -matgen lap64x64 -name lap >/dev/null
# Prime the cache: batching is warm-only, so the cold solve runs alone.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"matrix":"lap","precond":"fsaie"}' \
    "http://$baddr/api/v1/solve" >"$workdir/bprime.json"
grep -q '"cache": *"miss"' "$workdir/bprime.json" || { echo "FAIL: batch priming solve not a miss"; cat "$workdir/bprime.json"; fail=1; }
batchpids=""
for i in 1 2 3; do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"matrix":"lap","precond":"fsaie"}' \
        "http://$baddr/api/v1/solve" >"$workdir/batch$i.json" &
    batchpids="$batchpids $!"
done
for p in $batchpids; do
    wait "$p" || { echo "FAIL: batched solve request failed"; fail=1; }
done
bid=$(json_str "$workdir/batch1.json" id)
[ -n "$bid" ] || { echo "FAIL: batched solve response has no batch id:"; cat "$workdir/batch1.json"; fail=1; }
for i in 1 2 3; do
    grep -q '"cache": *"hit"' "$workdir/batch$i.json" || { echo "FAIL: batched solve $i not warm"; cat "$workdir/batch$i.json"; fail=1; }
    grep -q '"converged": *true' "$workdir/batch$i.json" || { echo "FAIL: batched solve $i did not converge"; fail=1; }
    grep -q "\"id\": *\"$bid\"" "$workdir/batch$i.json" || { echo "FAIL: batched solve $i not in batch $bid"; cat "$workdir/batch$i.json"; fail=1; }
    grep -q '"size": *3' "$workdir/batch$i.json" || { echo "FAIL: batched solve $i reports wrong batch size"; cat "$workdir/batch$i.json"; fail=1; }
done
curl -fsS "http://$baddr/metrics" >"$workdir/bmetrics.txt"
for fam in \
    batch_batches_total:counter batch_jobs_total:counter batch_size:histogram \
    batch_window_wait_ns:histogram batch_achieved_ai:gauge; do
    name=${fam%:*}; kind=${fam#*:}
    grep -q "^# HELP $name " "$workdir/bmetrics.txt" || { echo "FAIL: missing # HELP for $name"; fail=1; }
    grep -q "^# TYPE $name $kind\$" "$workdir/bmetrics.txt" || { echo "FAIL: missing # TYPE $name $kind"; fail=1; }
done
grep -q '^batch_jobs_total [2-9]' "$workdir/bmetrics.txt" || { echo "FAIL: batch_jobs_total < 2:"; grep '^batch_' "$workdir/bmetrics.txt" || true; fail=1; }
grep -q '^batch_batches_total [1-9]' "$workdir/bmetrics.txt" || { echo "FAIL: batch_batches_total not incremented"; fail=1; }
# The members' run reports carry the multi-RHS accounting: nrhs and the
# batch section with the amortized per-RHS wall time.
batchreport=$(grep -l "\"$bid\"" "$workdir/bruns"/*.json | head -1)
[ -n "$batchreport" ] || { echo "FAIL: no run report references batch $bid"; ls "$workdir/bruns"; fail=1; }
if [ -n "$batchreport" ]; then
    grep -q '"nrhs": *3' "$batchreport" || { echo "FAIL: batched run report missing nrhs=3"; cat "$batchreport"; fail=1; }
    grep -q '"batch"' "$batchreport" || { echo "FAIL: batched run report missing batch section"; fail=1; }
    grep -q '"per_rhs_ns"' "$batchreport" || { echo "FAIL: batch section missing per_rhs_ns"; fail=1; }
fi
kill "$bpid" 2>/dev/null || true
wait "$bpid" 2>/dev/null || true

echo "== fsaid solve CLI surfaces its trace id =="
"$workdir/fsaid" solve -addr "$addr" -matrix lap -precond fsaie >"$workdir/cli.out"
grep -q 'trace=[0-9a-f]\{32\}' "$workdir/cli.out" || { echo "FAIL: fsaid solve output has no trace id:"; cat "$workdir/cli.out"; fail=1; }

echo "== fsaid stats / jobs =="
"$workdir/fsaid" stats -addr "$addr"
"$workdir/fsaid" jobs -addr "$addr"

echo "== graceful shutdown on SIGTERM =="
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: fsaid did not exit on SIGTERM"
    fail=1
else
    wait "$pid" 2>/dev/null || true
    pid=""
fi

# With SMOKE_ARTIFACTS_DIR set (CI does), keep the captured profiles and
# run reports for upload; the ephemeral workdir is deleted either way.
if [ -n "${SMOKE_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$SMOKE_ARTIFACTS_DIR"
    cp -f "$workdir"/*.json "$workdir"/heap.pb.gz "$SMOKE_ARTIFACTS_DIR"/ 2>/dev/null || true
    cp -rf "$workdir/runs" "$SMOKE_ARTIFACTS_DIR"/ 2>/dev/null || true
    echo "smoke artifacts kept in $SMOKE_ARTIFACTS_DIR"
fi

if [ "$fail" -ne 0 ]; then
    echo "service smoke test FAILED"
    exit 1
fi
echo "service smoke test OK"
